package platform

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ReferenceClockGHz is the Table 1 core frequency every performance metric
// is normalized against. The compute dim sweeps the clock around this
// value; at exactly ReferenceClockGHz the three-resource performance
// metric coincides with plain IPC.
const ReferenceClockGHz = 3.0

// Dim kind identifiers, used by the JSON spec encoding and ByKind.
const (
	KindBandwidth = "bandwidth"
	KindCache     = "cache"
	KindCompute   = "compute"
)

// ResourceDim is one allocatable resource dimension: its identity, total
// capacity, profiling ladder, and the hook that applies an allocated share
// to the timing model.
type ResourceDim struct {
	// Kind identifies the timing-model hook ("bandwidth", "cache",
	// "compute"); it survives JSON round trips where Apply cannot.
	Kind string
	// Name is the dimension's identity in profiles, tables, and lookups
	// (e.g. "bandwidth"); unique within a Spec.
	Name string
	// Unit is the human-readable unit ("GB/s", "MB", "GHz").
	Unit string
	// Format is the fmt verb tables print allocation values with
	// (e.g. "%4.1f"); empty means "%g".
	Format string
	// Capacity is the total allocatable amount, in Unit.
	Capacity float64
	// Levels is the profiling ladder, ascending, in Unit.
	Levels []float64
	// Apply configures the platform for an allocation of x Unit of this
	// dimension. Hooks mutate only their own component fields, so dims
	// compose in any order.
	Apply func(p *Platform, x float64) error
}

// fmtVerb returns the dim's printing verb.
func (d ResourceDim) fmtVerb() string {
	if d.Format == "" {
		return "%g"
	}
	return d.Format
}

// FormatValue renders one allocation value with the dim's verb and unit,
// e.g. " 6.4 GB/s".
func (d ResourceDim) FormatValue(x float64) string {
	return fmt.Sprintf(d.fmtVerb()+" %s", x, d.Unit)
}

// Spec is an ordered set of resource dimensions plus the performance
// metric profiled over them. The dim order fixes the allocation-vector
// convention everywhere downstream: profiles, fitted elasticities,
// capacity vectors, and allocation matrices all index resources in
// Spec.Dims order.
type Spec struct {
	// Name labels the spec in hashes and reports (e.g. "cache+bandwidth").
	Name string
	// Dims are the resource dimensions, in allocation-vector order.
	Dims []ResourceDim
	// Perf maps a run's IPC and the allocation that produced it to the
	// profiled performance metric. Nil means IPC itself (the 2-resource
	// convention, where the clock is pinned at ReferenceClockGHz).
	Perf func(ipc float64, alloc []float64) float64
}

// NumResources returns R, the number of dimensions.
func (s Spec) NumResources() int { return len(s.Dims) }

// Names returns the dim names in order.
func (s Spec) Names() []string {
	out := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = d.Name
	}
	return out
}

// Capacities returns the per-dim total capacities in order.
func (s Spec) Capacities() []float64 {
	out := make([]float64, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = d.Capacity
	}
	return out
}

// DimIndex returns the index of the named dim, or -1.
func (s Spec) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the spec is usable for sweeping and allocation.
func (s Spec) Validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("%w: spec has no dimensions", ErrBadPlatform)
	}
	seen := map[string]bool{}
	for i, d := range s.Dims {
		if d.Name == "" {
			return fmt.Errorf("%w: dim %d has no name", ErrBadPlatform, i)
		}
		if seen[d.Name] {
			return fmt.Errorf("%w: duplicate dim name %q", ErrBadPlatform, d.Name)
		}
		seen[d.Name] = true
		if d.Apply == nil {
			return fmt.Errorf("%w: dim %q has no Apply hook", ErrBadPlatform, d.Name)
		}
		if !(d.Capacity > 0) || math.IsInf(d.Capacity, 0) {
			return fmt.Errorf("%w: dim %q capacity %v", ErrBadPlatform, d.Name, d.Capacity)
		}
		if len(d.Levels) == 0 {
			return fmt.Errorf("%w: dim %q has no sweep levels", ErrBadPlatform, d.Name)
		}
		for j, l := range d.Levels {
			if !(l > 0) || math.IsInf(l, 0) {
				return fmt.Errorf("%w: dim %q level %d = %v", ErrBadPlatform, d.Name, j, l)
			}
			if j > 0 && l <= d.Levels[j-1] {
				return fmt.Errorf("%w: dim %q levels not ascending at %d", ErrBadPlatform, d.Name, j)
			}
		}
	}
	return nil
}

// GridSize returns the number of points in the cartesian profiling grid.
func (s Spec) GridSize() int {
	n := 1
	for _, d := range s.Dims {
		n *= len(d.Levels)
	}
	return n
}

// GridPoint returns the i-th allocation vector of the cartesian grid in
// row-major order with dim 0 outermost — for the default spec this is
// exactly the historical bandwidth-major sample order.
func (s Spec) GridPoint(i int) []float64 {
	alloc := make([]float64, len(s.Dims))
	for d := len(s.Dims) - 1; d >= 0; d-- {
		levels := s.Dims[d].Levels
		alloc[d] = levels[i%len(levels)]
		i /= len(levels)
	}
	return alloc
}

// Machine builds the platform for one allocation vector by applying every
// dim's hook to the base Table 1 machine.
func (s Spec) Machine(alloc []float64) (Platform, error) {
	if len(alloc) != len(s.Dims) {
		return Platform{}, fmt.Errorf("%w: %d allocation entries for %d dims", ErrBadPlatform, len(alloc), len(s.Dims))
	}
	p := BasePlatform()
	for d, dim := range s.Dims {
		if dim.Apply == nil {
			return Platform{}, fmt.Errorf("%w: dim %q has no Apply hook", ErrBadPlatform, dim.Name)
		}
		if err := dim.Apply(&p, alloc[d]); err != nil {
			return Platform{}, fmt.Errorf("%w: dim %q at %v: %v", ErrBadPlatform, dim.Name, alloc[d], err)
		}
	}
	return p, nil
}

// PerfOf maps a run's IPC at the given allocation to the spec's
// performance metric.
func (s Spec) PerfOf(ipc float64, alloc []float64) float64 {
	if s.Perf == nil {
		return ipc
	}
	return s.Perf(ipc, alloc)
}

// Key returns a canonical string identifying the spec for memoization:
// name, then each dim's identity, capacity, and ladder with round-trip
// float formatting. Two specs with equal keys profile and fit identically.
func (s Spec) Key() string {
	var b strings.Builder
	b.WriteString(s.Name)
	for _, d := range s.Dims {
		b.WriteString("|")
		b.WriteString(d.Kind)
		b.WriteString(":")
		b.WriteString(d.Name)
		b.WriteString(":")
		b.WriteString(d.Unit)
		b.WriteString(":")
		b.WriteString(strconv.FormatFloat(d.Capacity, 'g', -1, 64))
		for _, l := range d.Levels {
			b.WriteString(",")
			b.WriteString(strconv.FormatFloat(l, 'g', -1, 64))
		}
	}
	return b.String()
}

// BasePlatform returns the Table 1 machine every spec starts from: the
// top of both default ladders at the reference clock. Dims overwrite the
// components they own, so the base values only matter for dimensions a
// spec does not allocate.
func BasePlatform() Platform {
	return DefaultPlatform(2<<20, 12.8)
}

// BandwidthDim is the memory-bandwidth resource: Table 1's GB/s ladder,
// applied as the DRAM token-bucket's sustained rate.
func BandwidthDim() ResourceDim {
	return ResourceDim{
		Kind:     KindBandwidth,
		Name:     "bandwidth",
		Unit:     "GB/s",
		Format:   "%4.1f",
		Capacity: 12.8,
		Levels:   []float64{0.8, 1.6, 3.2, 6.4, 12.8},
		Apply: func(p *Platform, x float64) error {
			if !(x > 0) {
				return fmt.Errorf("bandwidth %v GB/s must be positive", x)
			}
			p.DRAM.BandwidthGBps = x
			return nil
		},
	}
}

// CacheDim is the LLC-capacity resource: Table 1's size ladder in MB,
// applied as the LLC geometry. All Table 1 sizes are exact in MB (powers
// of two), so MB→bytes round-trips bit for bit.
func CacheDim() ResourceDim {
	return ResourceDim{
		Kind:     KindCache,
		Name:     "cache",
		Unit:     "MB",
		Format:   "%5.3f",
		Capacity: 2.0,
		Levels:   []float64{0.125, 0.25, 0.5, 1, 2},
		Apply: func(p *Platform, x float64) error {
			if !(x > 0) {
				return fmt.Errorf("cache %v MB must be positive", x)
			}
			p.LLC = LLCGeometry(int(x*(1<<20) + 0.5))
			return nil
		},
	}
}

// ComputeDim is the core-frequency resource: the allocated share is the
// core clock in GHz. Raising the clock shortens the core cycle, so fixed
// DRAM nanosecond timings cost more cycles — memory-bound workloads see
// diminishing returns exactly as Cobb-Douglas assumes, while compute-bound
// workloads scale nearly linearly. Performance under a compute dim is
// measured in reference-clock IPC (see ThreeResource), keeping the metric
// comparable across grid points at different frequencies.
func ComputeDim() ResourceDim {
	return ResourceDim{
		Kind:     KindCompute,
		Name:     "compute",
		Unit:     "GHz",
		Format:   "%5.3f",
		Capacity: ReferenceClockGHz,
		Levels:   []float64{1.0, 1.5, 2.0, 3.0},
		Apply: func(p *Platform, x float64) error {
			if !(x > 0) {
				return fmt.Errorf("compute %v GHz must be positive", x)
			}
			p.DRAM.CoreClockGHz = x
			return nil
		},
	}
}

// Default returns the paper's two-resource case study: bandwidth × cache,
// in the historical (bandwidth GB/s, cache MB) allocation-vector order.
// Sweeping it reproduces the legacy Table 1 grid bit for bit.
func Default() Spec {
	return Spec{Name: "cache+bandwidth", Dims: []ResourceDim{BandwidthDim(), CacheDim()}}
}

// ThreeResource returns the R=3 spec: bandwidth × cache × compute. The
// performance metric is instructions per reference-clock cycle,
// IPC · f/ReferenceClockGHz — instructions retired per wall-clock time,
// normalized so it equals IPC at the reference clock.
func ThreeResource() Spec {
	dims := []ResourceDim{BandwidthDim(), CacheDim(), ComputeDim()}
	computeIdx := len(dims) - 1
	return Spec{
		Name: "cache+bandwidth+compute",
		Dims: dims,
		Perf: func(ipc float64, alloc []float64) float64 {
			return ipc * alloc[computeIdx] / ReferenceClockGHz
		},
	}
}

// ByResources maps a resource count to a standard spec: 2 → Default,
// 3 → ThreeResource.
func ByResources(n int) (Spec, error) {
	switch n {
	case 2:
		return Default(), nil
	case 3:
		return ThreeResource(), nil
	default:
		return Spec{}, fmt.Errorf("%w: no standard spec with %d resources (have 2, 3)", ErrBadPlatform, n)
	}
}

// ByKind returns the standard dim of the given kind.
func ByKind(kind string) (ResourceDim, error) {
	switch kind {
	case KindBandwidth:
		return BandwidthDim(), nil
	case KindCache:
		return CacheDim(), nil
	case KindCompute:
		return ComputeDim(), nil
	default:
		return ResourceDim{}, fmt.Errorf("%w: unknown dim kind %q (have bandwidth, cache, compute)", ErrBadPlatform, kind)
	}
}

// specJSON is the serialized spec form: Apply hooks cannot travel through
// JSON, so each dim names its kind and may override the identity fields.
type specJSON struct {
	Name string    `json:"name,omitempty"`
	Perf string    `json:"perf,omitempty"` // "ipc" or "reference-clock"
	Dims []dimJSON `json:"dims"`
}

type dimJSON struct {
	Kind     string    `json:"kind"`
	Name     string    `json:"name,omitempty"`
	Unit     string    `json:"unit,omitempty"`
	Format   string    `json:"format,omitempty"`
	Capacity float64   `json:"capacity,omitempty"`
	Levels   []float64 `json:"levels,omitempty"`
}

// ParseSpec decodes a JSON platform spec. Each dim is a standard kind
// (bandwidth, cache, compute) with optional overrides for name, unit,
// capacity, and sweep levels, e.g.:
//
//	{"name": "big-box",
//	 "dims": [
//	   {"kind": "bandwidth", "capacity": 25.6},
//	   {"kind": "cache", "levels": [0.25, 0.5, 1, 2, 4], "capacity": 4},
//	   {"kind": "compute"}]}
//
// When any dim's kind is "compute" the reference-clock performance metric
// is selected automatically (override with "perf": "ipc").
func ParseSpec(data []byte) (Spec, error) {
	var raw specJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return Spec{}, fmt.Errorf("%w: spec JSON: %v", ErrBadPlatform, err)
	}
	if len(raw.Dims) == 0 {
		return Spec{}, fmt.Errorf("%w: spec JSON has no dims", ErrBadPlatform)
	}
	s := Spec{Name: raw.Name, Dims: make([]ResourceDim, len(raw.Dims))}
	computeIdx := -1
	for i, dj := range raw.Dims {
		d, err := ByKind(dj.Kind)
		if err != nil {
			return Spec{}, err
		}
		if dj.Name != "" {
			d.Name = dj.Name
		}
		if dj.Unit != "" {
			d.Unit = dj.Unit
		}
		if dj.Format != "" {
			d.Format = dj.Format
		}
		if dj.Capacity != 0 {
			d.Capacity = dj.Capacity
		}
		if len(dj.Levels) > 0 {
			d.Levels = append([]float64(nil), dj.Levels...)
		}
		if dj.Kind == KindCompute && computeIdx < 0 {
			computeIdx = i
		}
		s.Dims[i] = d
	}
	if s.Name == "" {
		parts := make([]string, len(s.Dims))
		for i, d := range s.Dims {
			parts[i] = d.Name
		}
		s.Name = strings.Join(parts, "+")
	}
	switch raw.Perf {
	case "", "reference-clock":
		if computeIdx >= 0 {
			idx := computeIdx
			s.Perf = func(ipc float64, alloc []float64) float64 {
				return ipc * alloc[idx] / ReferenceClockGHz
			}
		}
		if raw.Perf != "" && computeIdx < 0 {
			return Spec{}, fmt.Errorf("%w: perf \"reference-clock\" needs a compute dim", ErrBadPlatform)
		}
	case "ipc":
		s.Perf = nil
	default:
		return Spec{}, fmt.Errorf("%w: unknown perf metric %q (have ipc, reference-clock)", ErrBadPlatform, raw.Perf)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSpecArg resolves the CLI convention shared by refsim, refbench,
// refserve, and refcheck: an explicit spec JSON (path contents) wins,
// else a resource count (0 or 2 → the default 2-resource spec).
func ParseSpecArg(specJSONBytes []byte, resources int) (Spec, error) {
	if len(specJSONBytes) > 0 {
		return ParseSpec(specJSONBytes)
	}
	if resources == 0 {
		return Default(), nil
	}
	return ByResources(resources)
}
