// Package platform models the simulated machine as a set of allocatable
// resource dimensions instead of a hardwired (cache, bandwidth) pair. The
// REF paper's theory (§3) is stated over an arbitrary number of resources
// R; this package makes the repo's simulation and profiling pipeline match
// that generality:
//
//   - Platform bundles the Table 1 component configurations (moved here
//     from internal/sim so the spec layer can construct machines without
//     an import cycle; sim re-exports an alias).
//   - ResourceDim names one allocatable resource — its unit, total
//     capacity, profiling ladder, and the hook that applies an allocated
//     share to the timing model.
//   - Spec is an ordered list of dims plus an optional performance metric;
//     it generates the cartesian profiling grid, builds the machine for
//     any allocation vector, and hashes canonically for memoization.
//
// Default() reproduces the paper's two-resource case study bit for bit;
// ThreeResource() adds a core-frequency compute dim so R=3 is a real,
// simulated economy rather than a hand-written example.
package platform

import (
	"errors"
	"fmt"

	"ref/internal/cache"
	"ref/internal/cpu"
	"ref/internal/dram"
)

// ErrBadPlatform reports invalid platform parameters. The message keeps the
// historical "sim:" prefix: the error predates this package and is matched
// by value (errors.Is) through the sim.ErrBadPlatform alias, and every
// message that ever reached a user spelled it this way.
var ErrBadPlatform = errors.New("sim: bad platform")

// Platform bundles the component configurations of Table 1.
type Platform struct {
	L1   cache.Config
	LLC  cache.Config
	DRAM dram.Config
	Core cpu.Config
	// Prefetch enables a next-line prefetcher at the LLC: each demand
	// miss also fetches the following block in the background, consuming
	// bandwidth to convert future misses into LLC hits. Table 1 does not
	// specify a prefetcher, so the default platform leaves it off; the
	// prefetcher ablation benchmark measures how it shifts fitted
	// elasticities.
	Prefetch bool
}

// DefaultPlatform returns Table 1's platform at one grid point: 3 GHz
// 4-wide OOO core, 32 KB 4-way L1 (2-cycle), 8-way LLC of the given size
// (20-cycle), single-channel closed-page DRAM at the given bandwidth.
func DefaultPlatform(llcBytes int, bandwidthGBps float64) Platform {
	return Platform{
		L1:   cache.Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 64, HitLatency: 2},
		LLC:  LLCGeometry(llcBytes),
		DRAM: dram.DefaultConfig(bandwidthGBps),
		Core: cpu.DefaultConfig(),
	}
}

// Validate checks all components.
func (p Platform) Validate() error {
	if err := p.L1.Validate(); err != nil {
		return fmt.Errorf("%w: L1: %v", ErrBadPlatform, err)
	}
	if err := p.LLC.Validate(); err != nil {
		return fmt.Errorf("%w: LLC: %v", ErrBadPlatform, err)
	}
	if err := p.DRAM.Validate(); err != nil {
		return fmt.Errorf("%w: DRAM: %v", ErrBadPlatform, err)
	}
	if err := p.Core.Validate(); err != nil {
		return fmt.Errorf("%w: core: %v", ErrBadPlatform, err)
	}
	return nil
}

// LLCGeometry picks an associativity for the requested capacity: 8-way when
// the set count comes out a power of two (all Table 1 sizes), otherwise the
// largest power-of-two set count whose implied associativity stays in the
// practical 4–16 range. This lets ablations sweep off-ladder capacities
// such as 192 KB (→ 6-way) without bending the cache model's indexing.
func LLCGeometry(sizeBytes int) cache.Config {
	cfg := cache.Config{SizeBytes: sizeBytes, Ways: 8, BlockBytes: 64, HitLatency: 20}
	if cfg.Validate() == nil {
		return cfg
	}
	blocks := sizeBytes / cfg.BlockBytes
	for sets := 1; sets <= blocks; sets <<= 1 {
		if blocks%sets != 0 {
			break
		}
		if ways := blocks / sets; ways >= 4 && ways <= 16 {
			cfg.Ways = ways
		}
	}
	return cfg
}
