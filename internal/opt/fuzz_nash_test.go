package opt

import (
	"math"
	"testing"
)

// FuzzProportionalOptimality checks the optimality claim behind Equation
// 13: for any non-negative weights, the proportional closed form maximizes
// the weighted log objective Σ_i Σ_r w_ir·log x_ir over feasible
// allocations. The fuzzer proposes bilateral transfers of one resource
// between the two agents; none may increase the objective.
func FuzzProportionalOptimality(f *testing.F) {
	f.Add(0.6, 0.4, 0.2, 0.8, 24.0, 12.0, 0, 0.5)
	f.Add(1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 1, 0.1)
	f.Add(0.9, 0.05, 0.3, 0.3, 1.0, 100.0, 0, 0.99)
	f.Fuzz(func(t *testing.T, w00, w01, w10, w11 float64, c0, c1 float64, res int, frac float64) {
		ws := [][]float64{{w00, w01}, {w10, w11}}
		for _, row := range ws {
			for _, v := range row {
				if math.IsNaN(v) || v < 1e-9 || v > 1e6 {
					return
				}
			}
		}
		if !(c0 > 1e-6) || !(c1 > 1e-6) || c0 > 1e9 || c1 > 1e9 {
			return
		}
		if math.IsNaN(frac) || frac <= 0 || frac >= 1 {
			return
		}
		cap := []float64{c0, c1}
		x, err := Proportional(ws, cap)
		if err != nil {
			t.Fatalf("closed form rejected valid weights: %v", err)
		}
		obj := func(a Alloc) float64 {
			var s float64
			for i, row := range ws {
				for r, w := range row {
					if a[i][r] <= 0 {
						return math.Inf(-1)
					}
					s += w * math.Log(a[i][r])
				}
			}
			return s
		}
		base := obj(x)
		if math.IsInf(base, -1) {
			t.Fatalf("closed form starves a positively weighted agent: %v", x)
		}
		// Transfer frac of agent 0's holding of resource `res` to agent 1.
		r := ((res % 2) + 2) % 2
		y := Alloc{
			append([]float64(nil), x[0]...),
			append([]float64(nil), x[1]...),
		}
		d := frac * y[0][r]
		y[0][r] -= d
		y[1][r] += d
		if got := obj(y); got > base+1e-9*math.Abs(base)+1e-9 {
			t.Fatalf("transfer of %v on resource %d improves objective: %v > %v", d, r, got, base)
		}
	})
}
