package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperAgents is the §3 running example: u1 = x^0.6 y^0.4, u2 = x^0.2 y^0.8.
var (
	paperAgents = []Agent{{Alpha: []float64{0.6, 0.4}}, {Alpha: []float64{0.2, 0.8}}}
	paperCap    = []float64{24, 12}
)

func TestProjectSimplexBasics(t *testing.T) {
	v := []float64{0.5, 0.5, 0.5}
	if err := ProjectSimplex(v, 0); err != nil {
		t.Fatalf("ProjectSimplex: %v", err)
	}
	for _, x := range v {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Fatalf("uniform projection = %v", v)
		}
	}
}

func TestProjectSimplexAlreadyOnSimplex(t *testing.T) {
	v := []float64{0.2, 0.3, 0.5}
	want := append([]float64(nil), v...)
	if err := ProjectSimplex(v, 0); err != nil {
		t.Fatalf("ProjectSimplex: %v", err)
	}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("projection moved a simplex point: %v", v)
		}
	}
}

func TestProjectSimplexClipsNegative(t *testing.T) {
	v := []float64{2, -1}
	if err := ProjectSimplex(v, 0); err != nil {
		t.Fatalf("ProjectSimplex: %v", err)
	}
	if math.Abs(v[0]-1) > 1e-12 || math.Abs(v[1]) > 1e-12 {
		t.Fatalf("projection = %v, want [1 0]", v)
	}
}

func TestProjectSimplexFloor(t *testing.T) {
	v := []float64{10, 0, 0, 0}
	floor := 0.05
	if err := ProjectSimplex(v, floor); err != nil {
		t.Fatalf("ProjectSimplex: %v", err)
	}
	var sum float64
	for _, x := range v {
		if x < floor-1e-12 {
			t.Fatalf("entry %v below floor %v", x, floor)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestProjectSimplexErrors(t *testing.T) {
	if err := ProjectSimplex(nil, 0); !errors.Is(err, ErrBadProblem) {
		t.Errorf("empty: %v", err)
	}
	if err := ProjectSimplex([]float64{1, 1}, 0.6); !errors.Is(err, ErrBadProblem) {
		t.Errorf("infeasible floor: %v", err)
	}
}

// Property: ProjectSimplex outputs a valid simplex point that is no farther
// from the input than any random simplex point (optimality spot check).
func TestProjectSimplexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		p := append([]float64(nil), v...)
		if err := ProjectSimplex(p, 0); err != nil {
			return false
		}
		var sum float64
		for _, x := range p {
			if x < -1e-12 {
				return false
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Compare against a random feasible point.
		q := make([]float64, n)
		var qs float64
		for i := range q {
			q[i] = rng.Float64()
			qs += q[i]
		}
		for i := range q {
			q[i] /= qs
		}
		dist := func(a []float64) float64 {
			var d float64
			for i := range a {
				d += (a[i] - v[i]) * (a[i] - v[i])
			}
			return d
		}
		return dist(p) <= dist(q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalPaperExample(t *testing.T) {
	// §4.1 worked example: x1 = 18, y1 = 4, x2 = 6, y2 = 8.
	weights := [][]float64{{0.6, 0.4}, {0.2, 0.8}}
	a, err := Proportional(weights, paperCap)
	if err != nil {
		t.Fatalf("Proportional: %v", err)
	}
	want := [][]float64{{18, 4}, {6, 8}}
	for i := range want {
		for r := range want[i] {
			if math.Abs(a[i][r]-want[i][r]) > 1e-9 {
				t.Errorf("alloc[%d][%d] = %v, want %v", i, r, a[i][r], want[i][r])
			}
		}
	}
}

func TestProportionalZeroWeightColumn(t *testing.T) {
	// No agent wants resource 1 → split equally.
	weights := [][]float64{{1, 0}, {1, 0}}
	a, err := Proportional(weights, []float64{10, 6})
	if err != nil {
		t.Fatalf("Proportional: %v", err)
	}
	if a[0][1] != 3 || a[1][1] != 3 {
		t.Errorf("unwanted resource split = %v, %v, want 3, 3", a[0][1], a[1][1])
	}
}

func TestProportionalErrors(t *testing.T) {
	if _, err := Proportional(nil, []float64{1}); !errors.Is(err, ErrBadProblem) {
		t.Error("no agents accepted")
	}
	if _, err := Proportional([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrBadProblem) {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Proportional([][]float64{{-1, 0}}, []float64{1, 2}); !errors.Is(err, ErrBadProblem) {
		t.Error("negative weight accepted")
	}
	if _, err := Proportional([][]float64{{1, 1}}, []float64{0, 2}); !errors.Is(err, ErrBadProblem) {
		t.Error("zero capacity accepted")
	}
}

func TestEqualSplit(t *testing.T) {
	a := EqualSplit(4, []float64{24, 12})
	for i := 0; i < 4; i++ {
		if a[i][0] != 6 || a[i][1] != 3 {
			t.Fatalf("EqualSplit row %d = %v", i, a[i])
		}
	}
	tot := a.ResourceTotals()
	if math.Abs(tot[0]-24) > 1e-12 || math.Abs(tot[1]-12) > 1e-12 {
		t.Fatalf("totals = %v", tot)
	}
}

func TestAllocHelpers(t *testing.T) {
	a := NewAlloc(2, 3)
	if a.NumAgents() != 2 || a.NumResources() != 3 {
		t.Fatal("shape accessors wrong")
	}
	a[0][0] = 5
	b := a.Clone()
	b[0][0] = 9
	if a[0][0] != 5 {
		t.Fatal("Clone aliases")
	}
	if !a.WithinCapacity([]float64{5, 1, 1}, 0) {
		t.Fatal("WithinCapacity false negative")
	}
	if a.WithinCapacity([]float64{4, 1, 1}, 0) {
		t.Fatal("WithinCapacity false positive")
	}
	var empty Alloc
	if empty.NumResources() != 0 || empty.ResourceTotals() != nil {
		t.Fatal("empty Alloc helpers wrong")
	}
}

// The unconstrained Nash-welfare maximum must match the closed form
// (allocation proportional to elasticity) — the equivalence the paper's
// §4.2 proof rests on.
func TestNashWelfareMatchesClosedForm(t *testing.T) {
	got, rep, err := MaximizeNashWelfare(paperAgents, nil, paperCap, nil, Config{MaxIters: 20000})
	if err != nil {
		t.Fatalf("MaximizeNashWelfare: %v (report %+v)", err, rep)
	}
	want := [][]float64{{18, 4}, {6, 8}}
	for i := range want {
		for r := range want[i] {
			if math.Abs(got[i][r]-want[i][r]) > 0.05 {
				t.Errorf("alloc[%d][%d] = %v, want %v", i, r, got[i][r], want[i][r])
			}
		}
	}
	if !rep.Converged {
		t.Error("not converged")
	}
}

// Property: for random 2–6 agent economies, the solver tracks the closed
// form within a small tolerance.
func TestNashWelfareClosedFormProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("solver property test is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		agents := make([]Agent, n)
		weights := make([][]float64, n)
		for i := range agents {
			a := []float64{0.1 + 0.9*rng.Float64(), 0.1 + 0.9*rng.Float64()}
			s := a[0] + a[1]
			a[0], a[1] = a[0]/s, a[1]/s
			agents[i] = Agent{Alpha: a}
			weights[i] = a
		}
		cap := []float64{5 + rng.Float64()*40, 5 + rng.Float64()*20}
		want, err := Proportional(weights, cap)
		if err != nil {
			return false
		}
		got, _, err := MaximizeNashWelfare(agents, nil, cap, nil, Config{MaxIters: 15000})
		if err != nil {
			return false
		}
		for i := range want {
			for r := range want[i] {
				if math.Abs(got[i][r]-want[i][r]) > 0.02*cap[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestNashWelfareRespectsCapacity(t *testing.T) {
	got, _, err := MaximizeNashWelfare(paperAgents, nil, paperCap, nil, Config{MaxIters: 5000})
	if err != nil {
		t.Fatalf("MaximizeNashWelfare: %v", err)
	}
	if !got.WithinCapacity(paperCap, 1e-9) {
		t.Fatalf("capacity violated: totals %v", got.ResourceTotals())
	}
}

func TestNashWelfareWithSIEFConstraints(t *testing.T) {
	// The closed-form REF allocation satisfies SI and EF, so the
	// constrained Nash program must still achieve (at least) the REF
	// objective value and end feasible.
	cons := append(SIConstraints(paperAgents, paperCap), EFConstraints(paperAgents, 2)...)
	got, rep, err := MaximizeNashWelfare(paperAgents, nil, paperCap, cons, Config{MaxIters: 40000})
	if err != nil {
		t.Fatalf("MaximizeNashWelfare: %v (report %+v)", err, rep)
	}
	for _, c := range cons {
		v, _ := c.Eval(got)
		if v < -1e-4 {
			t.Errorf("constraint %s violated: %v", c.Name, v)
		}
	}
	// Compare objective with the REF closed form.
	refAlloc, _ := Proportional([][]float64{{0.6, 0.4}, {0.2, 0.8}}, paperCap)
	var refObj float64
	for i, ag := range paperAgents {
		refObj += ag.logUtil(refAlloc[i])
	}
	if rep.Objective < refObj-1e-2 {
		t.Errorf("constrained objective %v below REF objective %v", rep.Objective, refObj)
	}
}

func TestEgalitarianEqualizesNormalizedUtility(t *testing.T) {
	// Equal slowdown: at the optimum all normalized log-utilities are
	// (approximately) equal — that is the whole point of the mechanism.
	offsets := make([]float64, len(paperAgents))
	for i, ag := range paperAgents {
		offsets[i] = ag.logUtil(paperCap)
	}
	got, rep, err := MaximizeEgalitarian(paperAgents, offsets, paperCap, nil, Config{MaxIters: 40000})
	if err != nil {
		t.Fatalf("MaximizeEgalitarian: %v (report %+v)", err, rep)
	}
	v0 := paperAgents[0].logUtil(got[0]) - offsets[0]
	v1 := paperAgents[1].logUtil(got[1]) - offsets[1]
	if math.Abs(v0-v1) > 0.02 {
		t.Errorf("normalized log-utilities differ: %v vs %v", v0, v1)
	}
	if !got.WithinCapacity(paperCap, 1e-9) {
		t.Errorf("capacity violated: %v", got.ResourceTotals())
	}
}

func TestEgalitarianBeatsEqualSplitMinimum(t *testing.T) {
	// The egalitarian optimum can never be worse for the worst-off agent
	// than the equal split (equal split is feasible).
	agents := []Agent{{Alpha: []float64{0.9, 0.1}}, {Alpha: []float64{0.1, 0.9}}, {Alpha: []float64{0.5, 0.5}}}
	cap := []float64{30, 15}
	offsets := make([]float64, len(agents))
	for i, ag := range agents {
		offsets[i] = ag.logUtil(cap)
	}
	got, rep, err := MaximizeEgalitarian(agents, offsets, cap, nil, Config{MaxIters: 40000})
	if err != nil {
		t.Fatalf("MaximizeEgalitarian: %v", err)
	}
	_ = got
	eq := EqualSplit(len(agents), cap)
	worstEq := math.Inf(1)
	for i, ag := range agents {
		if v := ag.logUtil(eq[i]) - offsets[i]; v < worstEq {
			worstEq = v
		}
	}
	if rep.Objective < worstEq-1e-3 {
		t.Errorf("egalitarian objective %v worse than equal split %v", rep.Objective, worstEq)
	}
}

func TestSolverInputValidation(t *testing.T) {
	if _, _, err := MaximizeNashWelfare(nil, nil, paperCap, nil, Config{}); !errors.Is(err, ErrBadProblem) {
		t.Error("no agents accepted")
	}
	if _, _, err := MaximizeNashWelfare(paperAgents, []float64{1}, paperCap, nil, Config{}); !errors.Is(err, ErrBadProblem) {
		t.Error("weight length mismatch accepted")
	}
	if _, _, err := MaximizeNashWelfare([]Agent{{Alpha: []float64{1}}}, nil, paperCap, nil, Config{}); !errors.Is(err, ErrBadProblem) {
		t.Error("alpha dimension mismatch accepted")
	}
	if _, _, err := MaximizeEgalitarian(paperAgents, []float64{0}, paperCap, nil, Config{}); !errors.Is(err, ErrBadProblem) {
		t.Error("offset length mismatch accepted")
	}
	bad := []Agent{{Alpha: []float64{math.NaN(), 1}}}
	if _, _, err := MaximizeNashWelfare(bad, nil, []float64{1, 1}, nil, Config{}); !errors.Is(err, ErrBadProblem) {
		t.Error("NaN alpha accepted")
	}
	if _, _, err := MaximizeNashWelfare(paperAgents, nil, []float64{-1, 1}, nil, Config{}); !errors.Is(err, ErrBadProblem) {
		t.Error("negative capacity accepted")
	}
}

func TestSIConstraintEvaluation(t *testing.T) {
	cons := SIConstraints(paperAgents, paperCap)
	if len(cons) != 2 {
		t.Fatalf("got %d constraints, want 2", len(cons))
	}
	eq := EqualSplit(2, paperCap)
	for _, c := range cons {
		v, g := c.Eval(eq)
		if math.Abs(v) > 1e-12 {
			t.Errorf("%s at equal split = %v, want 0", c.Name, v)
		}
		if g == nil {
			t.Errorf("%s gradient nil", c.Name)
		}
	}
	// REF allocation strictly satisfies SI for both agents here.
	refAlloc, _ := Proportional([][]float64{{0.6, 0.4}, {0.2, 0.8}}, paperCap)
	for _, c := range cons {
		if v, _ := c.Eval(refAlloc); v < 0 {
			t.Errorf("%s at REF allocation = %v, want ≥ 0", c.Name, v)
		}
	}
}

func TestEFConstraintEvaluation(t *testing.T) {
	cons := EFConstraints(paperAgents, 2)
	if len(cons) != 2 {
		t.Fatalf("got %d constraints, want 2", len(cons))
	}
	// Equal split is always envy-free.
	eq := EqualSplit(2, paperCap)
	for _, c := range cons {
		if v, _ := c.Eval(eq); math.Abs(v) > 1e-12 {
			t.Errorf("%s at equal split = %v, want 0", c.Name, v)
		}
	}
	// An extreme allocation makes agent 1 envy agent 0.
	skew := Alloc{{23, 11}, {1, 1}}
	var envy bool
	for _, c := range cons {
		if v, _ := c.Eval(skew); v < 0 {
			envy = true
		}
	}
	if !envy {
		t.Error("no envy detected for extreme allocation")
	}
}

func TestEFConstraintGradientSigns(t *testing.T) {
	cons := EFConstraints(paperAgents, 2)
	x := Alloc{{12, 6}, {12, 6}}
	v, g := cons[0].Eval(x) // EF[0,1]
	if math.Abs(v) > 1e-12 {
		t.Fatalf("symmetric allocation has EF value %v", v)
	}
	// More of a wanted resource to agent 0 raises g; to agent 1 lowers it.
	if g[0][0] <= 0 || g[1][0] >= 0 {
		t.Errorf("gradient signs wrong: %v", g)
	}
}
