// Package opt provides the numerical optimization substrate that stands in
// for the geometric-programming solver (CVX) used in the REF paper's
// evaluation. The programs the paper solves are all convex after the
// standard log transformation of Cobb-Douglas utilities:
//
//   - Nash welfare:  max Σ_i w_i log u_i(x_i)         (Equation 14)
//   - Egalitarian:   max min_i [log u_i(x_i) − b_i]    (equal slowdown)
//
// subject to per-resource capacity constraints Σ_i x_ir ≤ C_r and optional
// concave fairness constraints (SI, EF). Because every objective here is
// strictly increasing in each x_ir, capacity binds at the optimum, so the
// solvers work in share space: s_ir = x_ir / C_r with each resource's share
// column on the probability simplex. Projected (sub)gradient ascent with a
// diminishing step size and exact penalties for the fairness constraints is
// sufficient and robust at the problem sizes that arise (N ≤ 64, R ≤ 4).
//
// Closed forms exist for the unconstrained Nash program (allocation
// proportional to elasticity) and are exposed in this package both for the
// REF mechanism itself and to cross-validate the iterative solver in tests.
package opt

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadProblem reports malformed solver inputs.
var ErrBadProblem = errors.New("opt: bad problem")

// ErrNoConvergence reports that the iteration budget was exhausted without
// meeting tolerances.
var ErrNoConvergence = errors.New("opt: did not converge")

// Alloc is an N-agent × R-resource allocation matrix: Alloc[i][r] is the
// quantity of resource r held by agent i.
type Alloc [][]float64

// NewAlloc returns a zero allocation for n agents and r resources.
func NewAlloc(n, r int) Alloc {
	a := make(Alloc, n)
	for i := range a {
		a[i] = make([]float64, r)
	}
	return a
}

// Clone returns a deep copy.
func (a Alloc) Clone() Alloc {
	out := make(Alloc, len(a))
	for i, row := range a {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// NumAgents returns the number of agents (rows).
func (a Alloc) NumAgents() int { return len(a) }

// NumResources returns the number of resources (columns), 0 if empty.
func (a Alloc) NumResources() int {
	if len(a) == 0 {
		return 0
	}
	return len(a[0])
}

// ResourceTotals returns Σ_i a[i][r] for each resource r.
func (a Alloc) ResourceTotals() []float64 {
	if len(a) == 0 {
		return nil
	}
	tot := make([]float64, len(a[0]))
	for _, row := range a {
		for r, v := range row {
			tot[r] += v
		}
	}
	return tot
}

// WithinCapacity reports whether resource totals respect cap within a
// relative tolerance.
func (a Alloc) WithinCapacity(cap []float64, relTol float64) bool {
	tot := a.ResourceTotals()
	if len(tot) != len(cap) {
		return false
	}
	for r, t := range tot {
		if t > cap[r]*(1+relTol) {
			return false
		}
	}
	return true
}

// Agent is the solver's view of a Cobb-Douglas agent: just its elasticities.
// The scale constant α₀ never affects any of the programs (it adds a
// constant in log space), so it is omitted.
type Agent struct {
	Alpha []float64
}

// logUtil returns Σ_r α_r log x_r, treating zero-elasticity resources as
// absent, and -Inf if any needed resource is zero.
func (ag Agent) logUtil(x []float64) float64 {
	var s float64
	for r, a := range ag.Alpha {
		if a == 0 {
			continue
		}
		if x[r] <= 0 {
			return math.Inf(-1)
		}
		s += a * math.Log(x[r])
	}
	return s
}

// Proportional computes the closed-form allocation x_ir = w_ir/Σ_j w_jr · C_r
// (the paper's Equation 13 when w are rescaled elasticities). Resources for
// which every agent's weight is zero are split equally — no agent wants
// them, and leaving them unallocated would waste capacity without changing
// any utility.
func Proportional(weights [][]float64, cap []float64) (Alloc, error) {
	return ProportionalBudgeted(weights, nil, cap)
}

// ProportionalBudgeted computes the budget-weighted Equation 13 allocation
// x_ir = B_i·w_ir/Σ_j B_j·w_jr · C_r — the CEEI allocation when incomes are
// B rather than equal. A nil budgets slice means unit budgets and follows
// the exact arithmetic of the unweighted form, so the two are bit-identical
// there (and multiplying by a budget of exactly 1.0 is itself exact, so the
// identity also holds element-wise for an explicit all-ones vector).
// Resources for which every effective weight is zero are split equally
// regardless of budgets: no agent wants them, and leaving them unallocated
// would waste capacity without changing any utility.
func ProportionalBudgeted(weights [][]float64, budgets []float64, cap []float64) (Alloc, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("%w: no agents", ErrBadProblem)
	}
	r := len(cap)
	for i, w := range weights {
		if len(w) != r {
			return nil, fmt.Errorf("%w: agent %d has %d weights, capacities have %d", ErrBadProblem, i, len(w), r)
		}
		for j, v := range w {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: agent %d weight[%d] = %v", ErrBadProblem, i, j, v)
			}
		}
	}
	if budgets != nil {
		if len(budgets) != n {
			return nil, fmt.Errorf("%w: %d budgets for %d agents", ErrBadProblem, len(budgets), n)
		}
		for i, b := range budgets {
			if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
				return nil, fmt.Errorf("%w: agent %d budget = %v, must be positive and finite", ErrBadProblem, i, b)
			}
		}
	}
	for j, c := range cap {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: capacity[%d] = %v", ErrBadProblem, j, c)
		}
	}
	out := NewAlloc(n, r)
	for j := 0; j < r; j++ {
		// Neumaier-compensated column sum: the weight sum is the only
		// quantity Equation 13 shares across agents, and carrying its
		// rounding error would skew every share. Compensation keeps the
		// sum faithfully rounded at any agent count, which is also what
		// lets the incremental engine (core.IncrementalAllocator) match
		// this full recompute to within 1 ulp.
		var sum, comp float64
		for i := 0; i < n; i++ {
			v := weights[i][j]
			if budgets != nil {
				v = budgets[i] * v
			}
			t := sum + v
			if math.Abs(sum) >= math.Abs(v) {
				comp += (sum - t) + v
			} else {
				comp += (v - t) + sum
			}
			sum = t
		}
		sum += comp
		for i := 0; i < n; i++ {
			v := weights[i][j]
			if budgets != nil {
				v = budgets[i] * v
			}
			if sum > 0 {
				out[i][j] = v / sum * cap[j]
			} else {
				out[i][j] = cap[j] / float64(n)
			}
		}
	}
	return out, nil
}

// EqualSplit returns the allocation giving every agent C_r/N of each
// resource — the outside option that sharing incentives are measured
// against (Equation 3).
func EqualSplit(n int, cap []float64) Alloc {
	a := NewAlloc(n, len(cap))
	for i := 0; i < n; i++ {
		for r, c := range cap {
			a[i][r] = c / float64(n)
		}
	}
	return a
}
