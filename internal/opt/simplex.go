package opt

import (
	"fmt"
	"math"
	"sort"
)

// ProjectSimplex projects v onto the simplex {s : s_i ≥ floor, Σ s_i = 1}
// in Euclidean distance, in place, using the sort-based algorithm of
// Duchi et al. (ICML 2008) applied after the change of variables
// t = (s - floor) / (1 - n·floor).
//
// floor must satisfy 0 ≤ floor < 1/len(v). A small positive floor keeps
// every share strictly positive so that log-space objectives stay finite.
func ProjectSimplex(v []float64, floor float64) error {
	n := len(v)
	if n == 0 {
		return fmt.Errorf("%w: empty vector", ErrBadProblem)
	}
	if floor < 0 || floor*float64(n) >= 1 {
		return fmt.Errorf("%w: floor %v infeasible for %d entries", ErrBadProblem, floor, n)
	}
	mass := 1 - floor*float64(n)
	// Shift to the floor-free problem: project w onto {t ≥ 0, Σ t = mass}.
	w := make([]float64, n)
	for i, x := range v {
		w[i] = x - floor
	}
	sorted := append([]float64(nil), w...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cum, theta float64
	k := 0
	for i, u := range sorted {
		cum += u
		t := (cum - mass) / float64(i+1)
		if u-t > 0 {
			theta = t
			k = i + 1
		}
	}
	_ = k
	for i := range v {
		t := w[i] - theta
		if t < 0 {
			t = 0
		}
		v[i] = t + floor
	}
	return nil
}

// normalizeColumn rescales column r of shares so it sums to one with the
// given floor, falling back to an equal split if the column is degenerate.
func normalizeColumn(shares Alloc, r int, floor float64) {
	n := len(shares)
	col := make([]float64, n)
	for i := range shares {
		col[i] = shares[i][r]
	}
	if err := ProjectSimplex(col, floor); err != nil {
		for i := range col {
			col[i] = 1 / float64(n)
		}
	}
	ok := true
	for _, v := range col {
		if math.IsNaN(v) {
			ok = false
			break
		}
	}
	if !ok {
		for i := range col {
			col[i] = 1 / float64(n)
		}
	}
	for i := range shares {
		shares[i][r] = col[i]
	}
}
