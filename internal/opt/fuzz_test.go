package opt

import (
	"math"
	"testing"
)

// FuzzProjectSimplex checks the projection invariants on arbitrary inputs:
// output entries at/above the floor, sum 1, and fixpoint on re-projection.
func FuzzProjectSimplex(f *testing.F) {
	f.Add(0.3, -2.0, 5.0, 0.0)
	f.Add(0.1, 0.1, 0.1, 0.05)
	f.Add(1e6, -1e6, 0.0, 0.01)
	f.Fuzz(func(t *testing.T, a, b, c, floor float64) {
		for _, v := range []float64{a, b, c, floor} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
		}
		if floor < 0 || floor*3 >= 1 {
			return
		}
		v := []float64{a, b, c}
		if err := ProjectSimplex(v, floor); err != nil {
			t.Fatalf("projection failed on finite input: %v", err)
		}
		var sum float64
		for _, x := range v {
			if x < floor-1e-9 {
				t.Fatalf("entry %v below floor %v", x, floor)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("sum = %v", sum)
		}
		// Projection of a simplex point is (numerically) itself.
		w := append([]float64(nil), v...)
		if err := ProjectSimplex(w, floor); err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if math.Abs(w[i]-v[i]) > 1e-6 {
				t.Fatalf("projection not idempotent: %v -> %v", v, w)
			}
		}
	})
}

// FuzzProportional checks the closed form against arbitrary weights:
// capacity exactly exhausted, non-negative shares, and scale invariance of
// the weights.
func FuzzProportional(f *testing.F) {
	f.Add(0.6, 0.4, 0.2, 0.8, 24.0, 12.0)
	f.Add(1.0, 0.0, 0.0, 1.0, 5.0, 5.0)
	f.Fuzz(func(t *testing.T, w00, w01, w10, w11, c0, c1 float64) {
		ws := [][]float64{{w00, w01}, {w10, w11}}
		for _, row := range ws {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e9 {
					return
				}
			}
		}
		if !(c0 > 1e-9) || !(c1 > 1e-9) || c0 > 1e9 || c1 > 1e9 {
			return
		}
		cap := []float64{c0, c1}
		x, err := Proportional(ws, cap)
		if err != nil {
			return
		}
		tot := x.ResourceTotals()
		for r := range cap {
			if math.Abs(tot[r]-cap[r]) > 1e-6*cap[r] {
				t.Fatalf("resource %d total %v != capacity %v", r, tot[r], cap[r])
			}
		}
		for i := range x {
			for r := range x[i] {
				if x[i][r] < 0 {
					t.Fatalf("negative share %v", x[i][r])
				}
			}
		}
		// Scaling all weights by a constant changes nothing.
		scaled := [][]float64{{3 * w00, 3 * w01}, {3 * w10, 3 * w11}}
		y, err := Proportional(scaled, cap)
		if err != nil {
			t.Fatalf("scaled weights rejected: %v", err)
		}
		for i := range x {
			for r := range x[i] {
				if math.Abs(x[i][r]-y[i][r]) > 1e-6*(1+math.Abs(x[i][r])) {
					t.Fatalf("not scale invariant: %v vs %v", x[i][r], y[i][r])
				}
			}
		}
	})
}
