package opt

import (
	"fmt"
	"math"
)

// safePos guards a denominator that should be strictly positive but may be
// zero when a caller evaluates a constraint at an extreme allocation.
func safePos(x float64) float64 {
	if x < 1e-300 {
		return 1e-300
	}
	return x
}

// SIConstraints builds one sharing-incentive constraint per agent
// (Equation 3 in log space):
//
//	g_i(x) = log u_i(x_i) − log u_i(C/N) ≥ 0
//
// Each g_i is linear in log x and therefore concave in x.
func SIConstraints(agents []Agent, cap []float64) []Constraint {
	n := len(agents)
	cons := make([]Constraint, 0, n)
	for i := range agents {
		i := i
		// Precompute the equal-split utility offset.
		equal := make([]float64, len(cap))
		for r, c := range cap {
			equal[r] = c / float64(n)
		}
		offset := agents[i].logUtil(equal)
		cons = append(cons, Constraint{
			Name: fmt.Sprintf("SI[%d]", i),
			Eval: func(x Alloc) (float64, Alloc) {
				val := agents[i].logUtil(x[i]) - offset
				grad := NewAlloc(len(x), len(cap))
				for r, a := range agents[i].Alpha {
					if a == 0 {
						continue
					}
					grad[i][r] = a / safePos(x[i][r])
				}
				return val, grad
			},
		})
	}
	return cons
}

// EFConstraints builds one envy-freeness constraint per ordered pair of
// distinct agents (§3.2 in log space):
//
//	g_{ij}(x) = log u_i(x_i) − log u_i(x_j) ≥ 0
//
// i.e. agent i evaluates agent j's bundle with i's own utility and must not
// prefer it.
func EFConstraints(agents []Agent, numResources int) []Constraint {
	n := len(agents)
	cons := make([]Constraint, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			i, j := i, j
			cons = append(cons, Constraint{
				Name: fmt.Sprintf("EF[%d,%d]", i, j),
				Eval: func(x Alloc) (float64, Alloc) {
					val := agents[i].logUtil(x[i]) - agents[i].logUtil(x[j])
					grad := NewAlloc(len(x), numResources)
					for r, a := range agents[i].Alpha {
						if a == 0 {
							continue
						}
						grad[i][r] = a / safePos(x[i][r])
						grad[j][r] = -a / safePos(x[j][r])
					}
					// A -Inf − -Inf comparison (both bundles worthless to
					// agent i) is vacuously non-envious.
					if math.IsNaN(val) {
						val = 0
					}
					return val, grad
				},
			})
		}
	}
	return cons
}
