package opt

import (
	"fmt"
	"math"
)

// Constraint is a concave inequality constraint g(x) ≥ 0 over allocations.
// Eval returns the constraint value and its gradient with respect to the
// allocation entries. SI and EF constraints on log-transformed Cobb-Douglas
// utilities are concave, so penalized projected gradient ascent remains a
// convex method.
type Constraint struct {
	Name string
	Eval func(x Alloc) (val float64, grad Alloc)
}

// Config tunes the iterative solvers.
type Config struct {
	// MaxIters bounds the projected-gradient iterations.
	MaxIters int
	// Step is the base step size; the effective step decays as Step/√t.
	Step float64
	// Penalty is the weight ρ of the exact penalty ρ·Σ min(0, g_k).
	Penalty float64
	// Floor is the minimum share any agent holds of any resource, keeping
	// log utilities finite. Must be < 1/N.
	Floor float64
	// Tol is the constraint-violation tolerance for declaring convergence.
	Tol float64
	// Init optionally warm-starts the solver from an allocation (it is
	// normalized to shares internally). A feasible warm start — e.g. the
	// REF closed form for SI/EF-constrained programs — makes the exact
	// penalty method robust: the best-iterate tracking then never leaves
	// the feasible region for a worse point.
	Init Alloc
}

// DefaultConfig returns settings adequate for the paper-scale problems
// (N ≤ 64 agents, R ≤ 4 resources).
func DefaultConfig() Config {
	return Config{
		MaxIters: 60000,
		Step:     0.05,
		Penalty:  50,
		Floor:    1e-6,
		Tol:      1e-5,
	}
}

// Report describes a solver run.
type Report struct {
	// Iters is the number of iterations executed.
	Iters int
	// Objective is the objective value at the returned allocation.
	Objective float64
	// MaxViolation is the largest constraint violation max(0, -g_k) at the
	// returned allocation.
	MaxViolation float64
	// Converged is true when MaxViolation ≤ Tol.
	Converged bool
}

func validateProblem(agents []Agent, cap []float64, cfg *Config) error {
	if len(agents) == 0 {
		return fmt.Errorf("%w: no agents", ErrBadProblem)
	}
	r := len(cap)
	if r == 0 {
		return fmt.Errorf("%w: no resources", ErrBadProblem)
	}
	for i, ag := range agents {
		if len(ag.Alpha) != r {
			return fmt.Errorf("%w: agent %d has %d elasticities, capacities have %d", ErrBadProblem, i, len(ag.Alpha), r)
		}
		for j, a := range ag.Alpha {
			if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("%w: agent %d alpha[%d] = %v", ErrBadProblem, i, j, a)
			}
		}
	}
	for j, c := range cap {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: capacity[%d] = %v", ErrBadProblem, j, c)
		}
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = DefaultConfig().MaxIters
	}
	if cfg.Step <= 0 {
		cfg.Step = DefaultConfig().Step
	}
	if cfg.Penalty <= 0 {
		cfg.Penalty = DefaultConfig().Penalty
	}
	if cfg.Tol <= 0 {
		cfg.Tol = DefaultConfig().Tol
	}
	maxFloor := 1 / float64(len(agents)) / 4
	if cfg.Floor <= 0 || cfg.Floor >= maxFloor {
		cfg.Floor = math.Min(1e-6, maxFloor/2)
	}
	return nil
}

// sharesToAlloc converts share matrix s (columns on the simplex) to an
// allocation against cap.
func sharesToAlloc(s Alloc, cap []float64) Alloc {
	x := NewAlloc(len(s), len(cap))
	for i := range s {
		for r := range cap {
			x[i][r] = s[i][r] * cap[r]
		}
	}
	return x
}

// penaltyTerm accumulates ρ·Σ min(0, g_k) and its gradient (wrt shares)
// into grad, returning the penalty value and max violation.
func penaltyTerm(x Alloc, cap []float64, cons []Constraint, rho float64, grad Alloc) (pen, maxViol float64) {
	for _, c := range cons {
		v, g := c.Eval(x)
		if viol := -v; viol > maxViol {
			maxViol = viol
		}
		if v >= 0 {
			continue
		}
		pen += rho * v
		if g == nil {
			continue
		}
		for i := range grad {
			for r := range grad[i] {
				// Chain rule x_ir = s_ir · C_r.
				grad[i][r] += rho * g[i][r] * cap[r]
			}
		}
	}
	return pen, maxViol
}

// clampGrad limits the infinity norm of the gradient so that a single agent
// sitting at the share floor (with a 1/s gradient blow-up) cannot destroy
// the step.
func clampGrad(grad Alloc, limit float64) {
	var m float64
	for i := range grad {
		for r := range grad[i] {
			if a := math.Abs(grad[i][r]); a > m {
				m = a
			}
		}
	}
	if m <= limit || m == 0 {
		return
	}
	scale := limit / m
	for i := range grad {
		for r := range grad[i] {
			grad[i][r] *= scale
		}
	}
}

// MaximizeNashWelfare solves
//
//	max Σ_i weights_i · log u_i(x_i)   s.t.   Σ_i x_ir ≤ C_r,  g_k(x) ≥ 0
//
// for Cobb-Douglas agents via projected gradient ascent in share space with
// exact penalties for the extra constraints. With no constraints the result
// matches the closed form Proportional(weights·α) — a property the tests
// exploit. weights may be nil for uniform weights.
func MaximizeNashWelfare(agents []Agent, weights []float64, cap []float64, cons []Constraint, cfg Config) (Alloc, *Report, error) {
	if err := validateProblem(agents, cap, &cfg); err != nil {
		return nil, nil, err
	}
	n, r := len(agents), len(cap)
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, nil, fmt.Errorf("%w: %d weights for %d agents", ErrBadProblem, len(weights), n)
	}
	objective := func(x Alloc) float64 {
		var s float64
		for i, ag := range agents {
			s += weights[i] * ag.logUtil(x[i])
		}
		return s
	}
	gradFill := func(sh Alloc, grad Alloc) {
		for i, ag := range agents {
			for j := 0; j < r; j++ {
				if ag.Alpha[j] == 0 {
					grad[i][j] = 0
					continue
				}
				grad[i][j] = weights[i] * ag.Alpha[j] / sh[i][j]
			}
		}
	}
	return runAscent(agents, cap, cons, cfg, objective, gradFill)
}

// MaximizeEgalitarian solves
//
//	max min_i [ log u_i(x_i) − offsets_i ]   s.t.  Σ_i x_ir ≤ C_r, g_k(x) ≥ 0
//
// the log-space form of maximizing the minimum normalized utility
// U_i = u_i(x_i)/u_i(C) (equal slowdown) when offsets_i = log u_i(C).
// The max-min objective is smoothed with a soft-min whose sharpness β is
// annealed upward across iterations; the smoothed objective stays concave.
func MaximizeEgalitarian(agents []Agent, offsets []float64, cap []float64, cons []Constraint, cfg Config) (Alloc, *Report, error) {
	if err := validateProblem(agents, cap, &cfg); err != nil {
		return nil, nil, err
	}
	n, r := len(agents), len(cap)
	if offsets == nil {
		offsets = make([]float64, n)
	}
	if len(offsets) != n {
		return nil, nil, fmt.Errorf("%w: %d offsets for %d agents", ErrBadProblem, len(offsets), n)
	}
	vals := make([]float64, n)
	softW := make([]float64, n)
	fill := func(x Alloc) {
		for i, ag := range agents {
			vals[i] = ag.logUtil(x[i]) - offsets[i]
		}
	}
	objective := func(x Alloc) float64 {
		fill(x)
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	iter := 0
	gradFill := func(sh Alloc, grad Alloc) {
		// Anneal β from soft to sharp across the run.
		frac := float64(iter) / float64(cfg.MaxIters)
		beta := 20 * math.Pow(500, frac)
		x := sharesToAlloc(sh, cap)
		fill(x)
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		var z float64
		for i, v := range vals {
			softW[i] = math.Exp(-beta * (v - m))
			z += softW[i]
		}
		for i, ag := range agents {
			w := softW[i] / z
			for j := 0; j < r; j++ {
				if ag.Alpha[j] == 0 {
					grad[i][j] = 0
					continue
				}
				grad[i][j] = w * ag.Alpha[j] / sh[i][j]
			}
		}
		iter++
	}
	return runAscent(agents, cap, cons, cfg, objective, gradFill)
}

// runAscent is the shared projected-gradient loop. objective evaluates the
// smooth part at an allocation; gradFill writes the smooth part's gradient
// with respect to shares.
func runAscent(agents []Agent, cap []float64, cons []Constraint, cfg Config,
	objective func(Alloc) float64, gradFill func(sh, grad Alloc)) (Alloc, *Report, error) {

	n, r := len(agents), len(cap)
	shares := NewAlloc(n, r)
	if cfg.Init != nil && len(cfg.Init) == n && len(cfg.Init[0]) == r {
		for i := 0; i < n; i++ {
			for j := 0; j < r; j++ {
				shares[i][j] = cfg.Init[i][j] / cap[j]
			}
		}
		for j := 0; j < r; j++ {
			normalizeColumn(shares, j, cfg.Floor)
		}
	} else {
		for i := 0; i < n; i++ {
			for j := 0; j < r; j++ {
				shares[i][j] = 1 / float64(n)
			}
		}
	}
	grad := NewAlloc(n, r)
	best := shares.Clone()
	bestObj := math.Inf(-1)
	bestViol := math.Inf(1)
	evalAt := func(sh Alloc) (obj, viol float64) {
		x := sharesToAlloc(sh, cap)
		obj = objective(x)
		for _, c := range cons {
			v, _ := c.Eval(x)
			if -v > viol {
				viol = -v
			}
		}
		return obj, viol
	}
	// Record the starting point before any step: a feasible warm start
	// (e.g. the REF closed form) guarantees the returned allocation is
	// never worse than it.
	bestObj, bestViol = evalAt(shares)
	copyAlloc(best, shares)
	iters := 0
	for t := 0; t < cfg.MaxIters; t++ {
		iters = t + 1
		gradFill(shares, grad)
		x := sharesToAlloc(shares, cap)
		// Anneal the penalty weight upward so late iterations prioritize
		// feasibility over objective gain.
		rho := cfg.Penalty * (1 + 9*float64(t)/float64(cfg.MaxIters))
		_, _ = penaltyTerm(x, cap, cons, rho, grad)
		clampGrad(grad, 1e4)
		step := cfg.Step / math.Sqrt(float64(t+1))
		for i := 0; i < n; i++ {
			for j := 0; j < r; j++ {
				shares[i][j] += step * grad[i][j]
			}
		}
		for j := 0; j < r; j++ {
			normalizeColumn(shares, j, cfg.Floor)
		}
		// Periodically consider the iterate for "best so far": feasible
		// iterates ranked by objective; infeasible ones only accepted
		// while nothing feasible has been seen, ranked by violation.
		if t%25 == 0 || t == cfg.MaxIters-1 {
			obj, viol := evalAt(shares)
			if viol <= cfg.Tol {
				if bestViol > cfg.Tol || obj > bestObj {
					copyAlloc(best, shares)
					bestObj, bestViol = obj, viol
				}
			} else if bestViol > cfg.Tol && viol < bestViol {
				copyAlloc(best, shares)
				bestObj, bestViol = obj, viol
			}
		}
	}
	obj, viol := evalAt(best)
	rep := &Report{Iters: iters, Objective: obj, MaxViolation: viol, Converged: viol <= cfg.Tol}
	out := sharesToAlloc(best, cap)
	if !rep.Converged {
		return out, rep, fmt.Errorf("%w: max constraint violation %.3g after %d iterations", ErrNoConvergence, viol, iters)
	}
	return out, rep, nil
}

func copyAlloc(dst, src Alloc) {
	for i := range src {
		copy(dst[i], src[i])
	}
}
