package obs

import (
	"math"
	"testing"
)

// ladder recomputes the default bucket bounds exactly as the histogram
// does (repeated ×4), so boundary tests compare bit-identical floats.
func ladder() []float64 {
	return defaultBuckets()
}

// bucketOf observes a single value in a fresh histogram and returns the
// upper bound of the bucket it landed in. Snapshots skip leading empty
// buckets, so the first bucket with a count is the landing bucket.
func bucketOf(t *testing.T, v float64) float64 {
	t.Helper()
	r := NewRegistry()
	h := r.Histogram("x")
	h.Observe(v)
	s := h.snapshot()
	for _, b := range s.Buckets {
		if b.CumulativeCount > 0 {
			return b.UpperBound
		}
	}
	t.Fatalf("sample %v landed in no bucket", v)
	return math.NaN()
}

// TestHistogramBucketBoundaries pins the factor-4 ladder edge semantics:
// upper bounds are inclusive, values just above a bound move to the next
// bucket, everything at or below the first bound lands in the first
// bucket, and everything above the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := ladder()
	if len(bounds) != 27 || bounds[0] != 1e-6 {
		t.Fatalf("ladder changed: %d buckets starting at %v", len(bounds), bounds[0])
	}
	// Every exact bound is inclusive: the sample lands under that bound.
	for i, b := range bounds {
		if got := bucketOf(t, b); got != b {
			t.Errorf("bound %d: sample at %v landed under %v, want inclusive", i, b, got)
		}
		// Just above the bound falls to the next bucket (or +Inf after the
		// last rung).
		want := math.Inf(1)
		if i+1 < len(bounds) {
			want = bounds[i+1]
		}
		if got := bucketOf(t, math.Nextafter(b, math.Inf(1))); got != want {
			t.Errorf("bound %d: sample just above %v landed under %v, want %v", i, b, got, want)
		}
	}
	// At or below the bottom rung: first bucket.
	for _, v := range []float64{0, -1, 1e-9, math.Nextafter(1e-6, 0)} {
		if got := bucketOf(t, v); got != bounds[0] {
			t.Errorf("sample %v landed under %v, want first bucket %v", v, got, bounds[0])
		}
	}
	// Far above the top rung: +Inf bucket.
	if got := bucketOf(t, 1e12); !math.IsInf(got, 1) {
		t.Errorf("sample 1e12 landed under %v, want +Inf", got)
	}
}

// TestHistogramCumulativeConsistency checks the Prometheus cumulative
// convention on a multi-sample histogram: counts are monotone across
// buckets and the +Inf bucket equals the total count.
func TestHistogramCumulativeConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	samples := []float64{0, 1e-6, 2e-6, 5e-5, 1, 3.9, 4.0, 4.1, 1e10, -7}
	for _, v := range samples {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(samples))
	}
	var prev uint64
	for i, b := range s.Buckets {
		if b.CumulativeCount < prev {
			t.Fatalf("bucket %d count %d below previous %d", i, b.CumulativeCount, prev)
		}
		prev = b.CumulativeCount
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.CumulativeCount != s.Count {
		t.Fatalf("+Inf bucket = %+v, want cumulative %d", last, s.Count)
	}
	if s.Min != -7 || s.Max != 1e10 {
		t.Fatalf("min/max = %v/%v, want -7/1e10", s.Min, s.Max)
	}
}

// TestHistogramQuantile pins the interpolated quantile estimate the
// refload latency reports are built on.
func TestHistogramQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}

	// 100 samples in one bucket: the q-quantile interpolates linearly
	// across it. Snapshots compact away the empty leading buckets, so the
	// first rendered bucket's lower edge is 0.
	r := NewRegistry()
	h := r.Histogram("q")
	for i := 1; i <= 100; i++ {
		h.Observe(5e-6)
	}
	s := h.snapshot()
	for _, q := range []float64{0.1, 0.5, 0.99} {
		want := math.Min(1.6e-5*q, 5e-6) // clamped at the observed max
		if got := s.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}

	// A rank landing in the +Inf bucket reports the observed max.
	h2 := r.Histogram("inf")
	h2.Observe(1e12)
	h2.Observe(1e-6)
	if got := h2.snapshot().Quantile(0.99); got != 1e12 {
		t.Fatalf("+Inf-bucket quantile = %v, want the max", got)
	}

	// Quantiles are monotone in q and clamped to [min-ish, max].
	h3 := r.Histogram("mono")
	for i := 0; i < 1000; i++ {
		h3.Observe(float64(i) * 1e-5)
	}
	s3 := h3.snapshot()
	prev := 0.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s3.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	if s3.Quantile(1) > s3.Max {
		t.Fatalf("Quantile(1) = %v above max %v", s3.Quantile(1), s3.Max)
	}
}
