package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type testRec struct {
	Epoch int `json:"epoch"`
}

func flightTime(sec int) time.Time {
	return time.Date(2026, 8, 8, 0, 0, sec, 0, time.UTC)
}

func TestFlightRecorderRingOrder(t *testing.T) {
	f := NewFlightRecorder[testRec](4, FlightOptions{})
	for i := 1; i <= 6; i++ {
		f.Record(testRec{Epoch: i})
	}
	snap := f.Snapshot()
	if !snap.Enabled || snap.Size != 4 || snap.Seq != 6 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	want := []int{3, 4, 5, 6}
	if len(snap.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(snap.Records), len(want))
	}
	for i, rec := range snap.Records {
		if rec.Epoch != want[i] {
			t.Errorf("records[%d] = epoch %d, want %d (oldest first)", i, rec.Epoch, want[i])
		}
	}
}

func TestFlightRecorderDumpAndRearm(t *testing.T) {
	f := NewFlightRecorder[testRec](4, FlightOptions{})
	for i := 1; i <= 4; i++ {
		f.Record(testRec{Epoch: i})
	}
	dumped, _, err := f.Dump("audit_failure", flightTime(1))
	if err != nil || !dumped {
		t.Fatalf("first Dump = %v, %v; want true, nil", dumped, err)
	}
	// Same reason before the ring turns over: suppressed.
	f.Record(testRec{Epoch: 5})
	if dumped, _, _ := f.Dump("audit_failure", flightTime(2)); dumped {
		t.Error("dump re-fired before ring turnover")
	}
	// A different reason is independently armed.
	if dumped, _, _ := f.Dump("latency_breach", flightTime(3)); !dumped {
		t.Error("independent reason was suppressed")
	}
	// After a full turnover the original reason re-arms.
	for i := 6; i <= 9; i++ {
		f.Record(testRec{Epoch: i})
	}
	if dumped, _, _ := f.Dump("audit_failure", flightTime(4)); !dumped {
		t.Error("dump did not re-arm after ring turnover")
	}
	dumps := f.Dumps()
	if len(dumps) != 3 {
		t.Fatalf("got %d dumps, want 3", len(dumps))
	}
	if dumps[0].Reason != "audit_failure" || dumps[1].Reason != "latency_breach" || dumps[2].Reason != "audit_failure" {
		t.Errorf("dump reasons = %v", []string{dumps[0].Reason, dumps[1].Reason, dumps[2].Reason})
	}
	if dumps[0].Seq != 4 || dumps[2].Seq != 9 {
		t.Errorf("dump seqs = %d, %d; want 4, 9", dumps[0].Seq, dumps[2].Seq)
	}
	if got := dumps[2].Records[0].Epoch; got != 6 {
		t.Errorf("second audit dump starts at epoch %d, want 6", got)
	}
}

func TestFlightRecorderMaxDumpsRoll(t *testing.T) {
	f := NewFlightRecorder[testRec](1, FlightOptions{MaxDumps: 2})
	for i := 1; i <= 5; i++ {
		f.Record(testRec{Epoch: i})
		if dumped, _, _ := f.Dump("r", flightTime(i)); !dumped {
			t.Fatalf("dump %d suppressed (size-1 ring turns over every record)", i)
		}
	}
	dumps := f.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("retained %d dumps, want MaxDumps 2", len(dumps))
	}
	if dumps[0].Seq != 4 || dumps[1].Seq != 5 {
		t.Errorf("retained seqs = %d, %d; want the newest (4, 5)", dumps[0].Seq, dumps[1].Seq)
	}
}

func TestFlightRecorderDumpFiles(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder[testRec](2, FlightOptions{Dir: dir})
	f.Record(testRec{Epoch: 1})
	f.Record(testRec{Epoch: 2})
	dumped, file, err := f.Dump("audit_failure", flightTime(1))
	if !dumped || err != nil {
		t.Fatalf("Dump = %v, %v", dumped, err)
	}
	if filepath.Dir(file) != dir {
		t.Fatalf("dump file %q not in %q", file, dir)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("reading dump file: %v", err)
	}
	var d FlightDump[testRec]
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump file is not valid JSON: %v", err)
	}
	if d.Schema != FlightSchema || d.Reason != "audit_failure" || len(d.Records) != 2 {
		t.Errorf("dump file contents = %+v", d)
	}
}

func TestFlightRecorderDumpFileErrorNonFatal(t *testing.T) {
	f := NewFlightRecorder[testRec](2, FlightOptions{Dir: filepath.Join(t.TempDir(), "missing-subdir")})
	f.Record(testRec{Epoch: 1})
	dumped, file, err := f.Dump("r", flightTime(1))
	if !dumped {
		t.Fatal("dump suppressed by write error")
	}
	if err == nil {
		t.Fatal("expected a write error for a missing directory")
	}
	if file != "" {
		t.Errorf("failed write still reported file %q", file)
	}
	if dumps := f.Dumps(); len(dumps) != 1 || dumps[0].File != "" {
		t.Errorf("in-memory dump after write error = %+v", dumps)
	}
}

func TestNilFlightRecorderNoOps(t *testing.T) {
	var f *FlightRecorder[testRec]
	f.Record(testRec{Epoch: 1})
	if dumped, _, err := f.Dump("r", flightTime(1)); dumped || err != nil {
		t.Error("nil recorder dumped")
	}
	if f.Dumps() != nil {
		t.Error("nil recorder has dumps")
	}
	snap := f.Snapshot()
	if snap.Enabled {
		t.Error("nil recorder reports enabled")
	}
	if snap.Schema != FlightSchema {
		t.Errorf("nil snapshot schema = %q, want %q (probes still parse it)", snap.Schema, FlightSchema)
	}
}
