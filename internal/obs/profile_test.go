package obs

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
)

func TestRuntimeProfileRate(t *testing.T) {
	SetRuntimeProfileRate(1)
	defer SetRuntimeProfileRate(0)

	// Generate a little lock contention so the profiles have data.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				mu.Lock()
				runtime.Gosched()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	h := Handler()
	for _, profile := range []string{"block", "mutex"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/"+profile+"?debug=1", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET /debug/pprof/%s = %d, want 200", profile, rec.Code)
		}
	}

	// Disabling resets the runtime rates.
	SetRuntimeProfileRate(0)
	if frac := runtime.SetMutexProfileFraction(-1); frac != 0 {
		t.Errorf("mutex profile fraction after disable = %d, want 0", frac)
	}
}
