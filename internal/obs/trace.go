package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Causal tracing: structured span events with IDs, parent links, and
// key/value attributes, recorded into a bounded lock-free ring and
// exportable as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// The tracer follows the same contract as the metrics registry: nothing
// is installed by default, the nil *Tracer no-ops on every method, and
// instrumented sites pay one atomic pointer load to discover tracing is
// off. When tracing is on, each finished span costs one small allocation
// (the immutable Event stored in the ring) — events are never mutated
// after Emit, so concurrent Snapshot readers are race-free without
// locks.

// Attr is one numeric key/value attribute on a trace event. Trace
// attributes are numbers by design (epoch, batch size, counts, 0/1
// flags): the event name carries the semantic, and numeric args keep the
// hot path free of string formatting.
type Attr struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// maxEventAttrs bounds per-event attributes; they live inline in the
// Event so attribute-carrying spans cost no extra allocation.
const maxEventAttrs = 8

// Event is one completed span: a named interval with a tracer-unique ID,
// an optional parent link, and inline attributes. Events are immutable
// once emitted.
type Event struct {
	// ID is the span's tracer-unique identifier (assigned by NewID or at
	// Emit time; never 0 once recorded).
	ID uint64
	// Parent is the enclosing span's ID, 0 for a root span.
	Parent uint64
	// Name identifies the span site, e.g. "ref_serve_epoch_audit".
	Name string
	// Start and Dur delimit the interval.
	Start time.Time
	Dur   time.Duration
	// Attrs[:NAttrs] are the event's attributes.
	Attrs  [maxEventAttrs]Attr
	NAttrs int
}

// SetAttrs copies up to maxEventAttrs attributes into the event.
func (e *Event) SetAttrs(attrs ...Attr) {
	e.NAttrs = copy(e.Attrs[:], attrs)
}

// Tracer records completed span events into a bounded ring. Create with
// NewTracer; the nil Tracer discards everything.
type Tracer struct {
	// slots is a power-of-two ring of immutable events. Writers claim a
	// ticket and store unconditionally; the ring keeps the most recent
	// len(slots) events.
	slots []atomic.Pointer[Event]
	mask  uint64
	// next is the ticket counter (total events ever emitted).
	next atomic.Uint64
	// ids hands out span IDs; separate from next so StartChild can link
	// to a parent that has not finished (and thus not claimed a ticket).
	ids atomic.Uint64
	// base anchors Chrome-export timestamps.
	base time.Time
}

// DefaultTraceEvents is the ring capacity NewTracer uses for
// capacity <= 0.
const DefaultTraceEvents = 65536

// NewTracer returns a tracer retaining the most recent events in a ring
// of the given capacity, rounded up to a power of two (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	size := 16
	for size < capacity {
		size <<= 1
	}
	return &Tracer{
		slots: make([]atomic.Pointer[Event], size),
		mask:  uint64(size - 1),
		base:  time.Now(),
	}
}

// NewID returns a fresh nonzero span ID (0 for the nil Tracer).
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// Emit records a completed event, assigning an ID if it has none. The
// ring keeps the most recent cap events; older ones are overwritten.
func (t *Tracer) Emit(e *Event) {
	if t == nil || e == nil {
		return
	}
	if e.ID == 0 {
		e.ID = t.ids.Add(1)
	}
	ticket := t.next.Add(1) - 1
	t.slots[ticket&t.mask].Store(e)
}

// Len reports how many events the tracer currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n > uint64(len(t.slots)) {
		return len(t.slots)
	}
	return int(n)
}

// Snapshot copies the retained events, ordered by span ID (a stable,
// deterministic order; ring tickets race under concurrent emitters).
// Slots mid-overwrite yield either the old or the new event, never a
// torn one.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// globalTracer is the process-wide tracer consulted by StartSpan sites.
// nil (the default) disables tracing.
var globalTracer atomic.Pointer[Tracer]

// InstallTracer makes t the process-wide tracer picked up by every span
// site. Installing nil disables tracing again.
func InstallTracer(t *Tracer) { globalTracer.Store(t) }

// InstalledTracer returns the process-wide tracer, or nil when tracing
// is off.
func InstalledTracer() *Tracer { return globalTracer.Load() }

// TracingEnabled reports whether a tracer is installed.
func TracingEnabled() bool { return globalTracer.Load() != nil }

// ChromeEvent is one entry of the Chrome trace-event JSON format: a
// complete ("ph":"X") duration event with microsecond timestamps. The
// span's own ID and parent link ride in Args as "span" and "parent".
type ChromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the Chrome trace-event format,
// loadable in Perfetto and chrome://tracing.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// Chrome exports the retained events in Chrome trace-event form.
// Timestamps are microseconds relative to the tracer's creation time.
// The nil Tracer exports an empty (but well-formed) trace.
func (t *Tracer) Chrome() *ChromeTrace {
	out := &ChromeTrace{TraceEvents: []ChromeEvent{}, DisplayTimeUnit: "ms"}
	if t == nil {
		return out
	}
	for _, e := range t.Snapshot() {
		ce := ChromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   float64(e.Start.Sub(t.base)) / float64(time.Microsecond),
			Dur:  float64(e.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
			Args: make(map[string]float64, e.NAttrs+2),
		}
		ce.Args["span"] = float64(e.ID)
		if e.Parent != 0 {
			ce.Args["parent"] = float64(e.Parent)
		}
		for _, a := range e.Attrs[:e.NAttrs] {
			ce.Args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	return out
}

// WriteChromeTrace writes t's events as indented Chrome trace-event
// JSON.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.Chrome()); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}
