package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 100; i++ {
		tr.Emit(&Event{Name: "e", Start: time.Now(), Dur: time.Microsecond})
	}
	if got := tr.Len(); got != 16 {
		t.Fatalf("Len after overflow = %d, want ring size 16", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(snap))
	}
	// The ring keeps the most recent events: IDs 85..100.
	for _, e := range snap {
		if e.ID <= 84 {
			t.Errorf("stale event ID %d survived wraparound", e.ID)
		}
	}
}

func TestTracerCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultTraceEvents}, {-5, DefaultTraceEvents},
		{1, 16}, {16, 16}, {17, 32}, {1000, 1024},
	} {
		tr := NewTracer(tc.in)
		if got := len(tr.slots); got != tc.want {
			t.Errorf("NewTracer(%d) ring size = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if id := tr.NewID(); id != 0 {
		t.Errorf("nil NewID = %d, want 0", id)
	}
	tr.Emit(&Event{Name: "x"})
	if tr.Len() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracer retained events")
	}
	ch := tr.Chrome()
	if ch == nil || ch.TraceEvents == nil || len(ch.TraceEvents) != 0 {
		t.Errorf("nil Chrome() = %+v, want empty well-formed trace", ch)
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	if !strings.Contains(b.String(), `"traceEvents": []`) {
		t.Errorf("nil trace JSON = %s", b.String())
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := &Event{Name: "concurrent", Start: time.Now(), Dur: time.Nanosecond}
				e.SetAttrs(Attr{Key: "i", Value: float64(i)})
				tr.Emit(e)
				if i%10 == 0 {
					tr.Snapshot() // concurrent reads must be race-free
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 64 {
		t.Fatalf("Len = %d, want full ring 64", got)
	}
	for _, e := range tr.Snapshot() {
		if e.ID == 0 {
			t.Error("retained event with zero ID")
		}
	}
}

func TestChromeExportShape(t *testing.T) {
	tr := NewTracer(16)
	root := tr.NewID()
	child := &Event{Parent: root, Name: "stage", Start: tr.base.Add(time.Millisecond), Dur: 2 * time.Millisecond}
	child.SetAttrs(Attr{Key: "epoch", Value: 7})
	tr.Emit(child)
	tr.Emit(&Event{ID: root, Name: "root", Start: tr.base, Dur: 5 * time.Millisecond})

	var b strings.Builder
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var ch ChromeTrace
	if err := json.Unmarshal([]byte(b.String()), &ch); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(ch.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(ch.TraceEvents))
	}
	byName := map[string]ChromeEvent{}
	for _, e := range ch.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		if e.Pid != 1 || e.Tid != 1 {
			t.Errorf("event %q pid/tid = %d/%d, want 1/1", e.Name, e.Pid, e.Tid)
		}
		byName[e.Name] = e
	}
	rootEv, stage := byName["root"], byName["stage"]
	if rootEv.Args["span"] != float64(root) {
		t.Errorf("root span arg = %v, want %d", rootEv.Args["span"], root)
	}
	if stage.Args["parent"] != float64(root) {
		t.Errorf("stage parent arg = %v, want %d", stage.Args["parent"], root)
	}
	if _, ok := rootEv.Args["parent"]; ok {
		t.Error("root event should have no parent arg")
	}
	if stage.Args["epoch"] != 7 {
		t.Errorf("stage epoch arg = %v, want 7", stage.Args["epoch"])
	}
	if stage.Ts != 1000 {
		t.Errorf("stage ts = %v µs, want 1000", stage.Ts)
	}
	if stage.Dur != 2000 {
		t.Errorf("stage dur = %v µs, want 2000", stage.Dur)
	}
}

func TestSpanEmitsTraceEvents(t *testing.T) {
	tr := NewTracer(16)
	InstallTracer(tr)
	defer InstallTracer(nil)

	parent := StartSpan("outer")
	child := parent.StartChild("inner")
	child.End(Attr{Key: "n", Value: 3})
	parent.End()

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d events, want 2", len(snap))
	}
	var outer, inner *Event
	for i := range snap {
		switch snap[i].Name {
		case "outer":
			outer = &snap[i]
		case "inner":
			inner = &snap[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("missing spans in %+v", snap)
	}
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want outer ID %d", inner.Parent, outer.ID)
	}
	if inner.NAttrs != 1 || inner.Attrs[0] != (Attr{Key: "n", Value: 3}) {
		t.Errorf("inner attrs = %+v", inner.Attrs[:inner.NAttrs])
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	tr := NewTracer(16)
	InstallTracer(tr)
	defer InstallTracer(nil)
	tr.Emit(&Event{Name: "served", Start: time.Now(), Dur: time.Millisecond})

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/trace = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var ch ChromeTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatalf("body is not a Chrome trace: %v", err)
	}
	if len(ch.TraceEvents) != 1 || ch.TraceEvents[0].Name != "served" {
		t.Errorf("trace = %+v", ch.TraceEvents)
	}
}

func TestDebugTraceEndpointDisabled(t *testing.T) {
	InstallTracer(nil)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/trace (disabled) = %d", rec.Code)
	}
	var ch ChromeTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatalf("disabled trace is not valid JSON: %v", err)
	}
	if ch.TraceEvents == nil || len(ch.TraceEvents) != 0 {
		t.Errorf("disabled trace events = %+v, want empty list", ch.TraceEvents)
	}
}

// TestSpanDisabledZeroAlloc pins the fully-disabled span path: no
// registry, no tracer, no allocation.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	Install(nil)
	InstallTracer(nil)
	if avg := testing.AllocsPerRun(1000, func() {
		StartSpan("ref_zero_alloc_probe").End()
	}); avg != 0 {
		t.Errorf("disabled StartSpan/End allocates %.1f per op, want 0", avg)
	}
}

// TestSpanMetricsOnlyZeroAlloc pins the satellite fix: with a registry
// installed but no tracer, End resolves cached handles and never
// concatenates metric names — zero allocations in steady state.
func TestSpanMetricsOnlyZeroAlloc(t *testing.T) {
	Install(NewRegistry())
	defer Install(nil)
	InstallTracer(nil)
	if avg := testing.AllocsPerRun(1000, func() {
		StartSpan("ref_zero_alloc_probe").End()
	}); avg != 0 {
		t.Errorf("metrics-only StartSpan/End allocates %.1f per op, want 0", avg)
	}
}

// TestSpanTracingAllocBound pins the enabled-tracing span cost at its
// designed budget: one immutable Event allocation per span.
func TestSpanTracingAllocBound(t *testing.T) {
	Install(NewRegistry())
	InstallTracer(NewTracer(1024))
	defer func() {
		Install(nil)
		InstallTracer(nil)
	}()
	if avg := testing.AllocsPerRun(1000, func() {
		StartSpan("ref_zero_alloc_probe").End(Attr{Key: "k", Value: 1})
	}); avg > 1 {
		t.Errorf("tracing StartSpan/End allocates %.1f per op, want <= 1", avg)
	}
}
