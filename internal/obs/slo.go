package obs

import (
	"sync"
	"time"
)

// SLO tracks one latency service-level objective: each observation is
// classified good (≤ objective) or bad, cumulative good/bad counters
// accumulate for the process lifetime, and a rolling window yields the
// burn rate — the fraction of recent observations that were bad,
// normalized by the error budget, so burn > 1 means the objective is
// being missed faster than the budget allows. The nil SLO no-ops.
type SLO struct {
	name      string
	objective float64 // seconds
	budget    float64 // allowed bad fraction, in (0, 1]

	mu        sync.Mutex
	good, bad uint64
	window    []bool // true = bad
	head, n   int
	windowBad int
}

// SLOSnapshot is a point-in-time copy of an SLO tracker,
// JSON-serializable for healthz responses and run manifests.
type SLOSnapshot struct {
	// Name identifies the objective, e.g. "epoch_latency".
	Name string `json:"name"`
	// ObjectiveSeconds is the latency threshold.
	ObjectiveSeconds float64 `json:"objective_seconds"`
	// Budget is the allowed bad fraction.
	Budget float64 `json:"budget"`
	// Good and Bad count observations at or under / over the objective
	// since the tracker was created.
	Good uint64 `json:"good"`
	Bad  uint64 `json:"bad"`
	// WindowBad and WindowSize describe the rolling window behind the
	// burn rate.
	WindowBad  int `json:"window_bad"`
	WindowSize int `json:"window_size"`
	// BurnRate is (WindowBad/WindowSize)/Budget; above 1 the objective
	// is currently being violated.
	BurnRate float64 `json:"burn_rate"`
}

// NewSLO returns a tracker for a latency objective. budget ≤ 0 defaults
// to 0.01 (1% of observations may exceed the objective); window ≤ 0
// defaults to 1024 observations.
func NewSLO(name string, objective time.Duration, budget float64, window int) *SLO {
	if budget <= 0 {
		budget = 0.01
	}
	if budget > 1 {
		budget = 1
	}
	if window <= 0 {
		window = 1024
	}
	return &SLO{
		name:      name,
		objective: objective.Seconds(),
		budget:    budget,
		window:    make([]bool, window),
	}
}

// Observe classifies one latency sample and reports whether it met the
// objective (true for the nil SLO).
func (s *SLO) Observe(seconds float64) bool {
	if s == nil {
		return true
	}
	bad := seconds > s.objective
	s.mu.Lock()
	defer s.mu.Unlock()
	if bad {
		s.bad++
	} else {
		s.good++
	}
	if s.n == len(s.window) {
		if s.window[s.head] {
			s.windowBad--
		}
	} else {
		s.n++
	}
	s.window[s.head] = bad
	if bad {
		s.windowBad++
	}
	s.head = (s.head + 1) % len(s.window)
	return !bad
}

// BurnRate returns the current burn rate (0 for the nil SLO or before
// any observation).
func (s *SLO) BurnRate() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.burnRateLocked()
}

func (s *SLO) burnRateLocked() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.windowBad) / float64(s.n) / s.budget
}

// Snapshot returns a point-in-time copy (the zero snapshot for nil).
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SLOSnapshot{
		Name:             s.name,
		ObjectiveSeconds: s.objective,
		Budget:           s.budget,
		Good:             s.good,
		Bad:              s.bad,
		WindowBad:        s.windowBad,
		WindowSize:       s.n,
		BurnRate:         s.burnRateLocked(),
	}
}
