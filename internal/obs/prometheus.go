package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Series names that already carry a {label="v"}
// suffix are printed verbatim; TYPE comments are emitted once per base
// metric name.
func WritePrometheus(w io.Writer, s *SnapshotData) error {
	typed := map[string]bool{}
	emitType := func(series, kind string) error {
		base := baseName(series)
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := emitType(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emitType(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := emitType(name, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.CumulativeCount); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// baseName strips a {label} suffix from a series name.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// formatFloat renders a float compactly and losslessly.
func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }
