package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
)

// defaultBuckets returns the shared exponential bucket ladder: factor-4
// steps from 1e-6 up to ~4.5e9. One ladder serves every unit the repo
// observes — seconds (µs..hours), core cycles (1..billions), and unitless
// residuals — at the cost of a few empty buckets per histogram.
func defaultBuckets() []float64 {
	bounds := make([]float64, 27)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 4
	}
	return bounds
}

// Histogram accumulates samples into cumulative-style buckets with a
// lock-free hot path. The nil Histogram discards observations.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket; samples above
	// the last bound land in the implicit +Inf bucket counts[len(bounds)].
	bounds  []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits of the running min
	maxBits atomic.Uint64 // math.Float64bits of the running max
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search the bucket: bounds are sorted ascending.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	casAdd(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

// casAdd atomically adds v to the float64 stored in bits.
func casAdd(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observed samples (0 for the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples (0 for the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bucket is one (upper bound, cumulative count) pair of a snapshot, in
// Prometheus's cumulative-bucket convention.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf for the last.
	UpperBound float64
	// CumulativeCount counts samples ≤ UpperBound.
	CumulativeCount uint64
}

// bucketJSON is Bucket's wire form: the upper bound rides as a string so
// the +Inf bucket survives JSON (which has no infinity literal).
type bucketJSON struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketJSON{Le: le, Count: b.CumulativeCount})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	ub, err := strconv.ParseFloat(w.Le, 64)
	if err != nil {
		return fmt.Errorf("obs: bad bucket bound %q: %w", w.Le, err)
	}
	b.UpperBound = ub
	b.CumulativeCount = w.Count
	return nil
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Buckets is cumulative and ends with the +Inf bucket, whose count
	// equals Count.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns Sum/Count, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the cumulative
// buckets by linear interpolation within the bucket that crosses the
// target rank — the same estimate Prometheus's histogram_quantile gives.
// The lowest bucket interpolates from 0, and a rank landing in the +Inf
// bucket reports the observed Max (the bucket has no finite upper bound
// to interpolate toward). With no samples Quantile returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var prevCum uint64
	prevUB := 0.0
	for _, b := range s.Buckets {
		if float64(b.CumulativeCount) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return s.Max
			}
			in := float64(b.CumulativeCount - prevCum)
			v := b.UpperBound
			if in > 0 {
				v = prevUB + (b.UpperBound-prevUB)*(rank-float64(prevCum))/in
			}
			// The estimate can overshoot what was actually observed
			// (bucket bounds are coarser than samples); never report a
			// quantile above the max.
			return math.Min(v, s.Max)
		}
		prevCum, prevUB = b.CumulativeCount, b.UpperBound
	}
	return s.Max
}

// Snapshot returns a point-in-time copy of the histogram (the zero
// snapshot for the nil Histogram), ready for Quantile interpolation.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.snapshot()
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]Bucket, 0, len(h.counts)),
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		// Skip leading/trailing all-empty buckets to keep manifests and
		// text exposition compact; the +Inf bucket always renders so the
		// cumulative total is visible.
		if cum == 0 && i < len(h.bounds) {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, CumulativeCount: cum})
		if cum == s.Count && i < len(h.bounds) {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), CumulativeCount: cum})
			break
		}
	}
	return s
}
