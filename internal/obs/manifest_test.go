package obs

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ref_sim_runs_total").Add(25)
	r.Histogram("ref_par_job_seconds").Observe(0.01)
	Install(r)
	defer Install(nil)

	m := NewManifest("refbench", []string{"-exp", "fig13"})
	m.Parallelism = 4
	m.Accesses = 2000
	m.Record("fig13", 1.5, nil)
	m.Record("fig14", 2.5, errors.New("synthetic failure"))

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema {
		t.Errorf("schema = %q", got.Schema)
	}
	if got.Tool != "refbench" || got.Parallelism != 4 || got.Accesses != 2000 {
		t.Errorf("config fields lost: %+v", got)
	}
	if got.GoVersion != runtime.Version() || got.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("environment fields lost: %+v", got)
	}
	if len(got.Runs) != 2 || got.Runs[0].ID != "fig13" || got.Runs[0].Seconds != 1.5 {
		t.Errorf("runs lost: %+v", got.Runs)
	}
	if got.Runs[1].Error != "synthetic failure" {
		t.Errorf("error not recorded: %+v", got.Runs[1])
	}
	if got.Metrics == nil || got.Metrics.Counters["ref_sim_runs_total"] != 25 {
		t.Errorf("metric snapshot lost: %+v", got.Metrics)
	}
	if h := got.Metrics.Histograms["ref_par_job_seconds"]; h.Count != 1 {
		t.Errorf("histogram snapshot lost: %+v", h)
	}
	if got.WallSeconds < 0 {
		t.Errorf("wall seconds = %v", got.WallSeconds)
	}
	if got.StartedAt == "" {
		t.Error("StartedAt empty")
	}
}

func TestManifestWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	m := NewManifest("refsim", nil)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp files may survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".manifest-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestReadManifestRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifestFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := ReadManifestFile(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	wrong := filepath.Join(dir, "wrong.json")
	os.WriteFile(wrong, []byte(`{"schema":"other/v9"}`), 0o644)
	if _, err := ReadManifestFile(wrong); err == nil {
		t.Error("wrong schema accepted")
	}
}
