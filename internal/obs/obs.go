// Package obs is the repo's dependency-free observability layer: a
// concurrent registry of counters, gauges, and histograms, lightweight
// spans for timing simulation stages, a Prometheus-text/expvar/pprof HTTP
// endpoint, and a structured run-manifest format that makes bench
// trajectories machine-comparable.
//
// Design constraints, in priority order:
//
//  1. Zero cost when disabled. No registry is installed by default, and
//     every instrument is nil-safe: a nil *Counter, *Gauge, *Histogram, or
//     *Registry no-ops on update. Instrumented hot paths pay one atomic
//     pointer load to discover that observability is off — no allocation,
//     no locks, no time.Now.
//  2. Determinism-neutral. Instruments only accumulate numbers on the
//     side; they never feed back into simulation state, randomness, or
//     scheduling, so serial and parallel results stay bit-identical with
//     or without a registry installed.
//  3. Race-safe hot paths. Counter/gauge/histogram updates are lock-free
//     atomics; the registry mutex is taken only when resolving a metric
//     name to its instrument.
//
// Metric naming follows the Prometheus convention
// ref_<subsystem>_<quantity>_<unit>, with an optional {label="value"}
// suffix baked into the series name for low-cardinality breakdowns (the
// registry treats the full string as the key and the text exposition
// prints it verbatim).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The nil Counter discards
// updates, so call sites need no enabled-check of their own.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (pool width, utilization).
// The nil Gauge discards updates.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value (0 for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named instruments. The zero value is ready to use; the
// nil *Registry hands out nil instruments, which no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// spans caches each span name's resolved (histogram, counter) pair so
	// the span hot path resolves both instruments with one lock and zero
	// name concatenation after first use.
	spans map[string]spanHandle
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// spanHandle is a span name's cached instrument pair.
type spanHandle struct {
	hist  *Histogram
	total *Counter
}

// spanInstruments resolves the <name>_seconds histogram and <name>_total
// counter for a span site, building the suffixed names only on first use.
func (r *Registry) spanInstruments(name string) (*Histogram, *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.spans[name]; ok {
		return h.hist, h.total
	}
	if r.spans == nil {
		r.spans = make(map[string]spanHandle)
	}
	h := spanHandle{hist: r.histogramLocked(name + "_seconds"), total: r.counterLocked(name + "_total")}
	r.spans[name] = h
	return h.hist, h.total
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

func (r *Registry) counterLocked(name string) *Counter {
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default exponential
// buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histogramLocked(name)
}

func (r *Registry) histogramLocked(name string) *Histogram {
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(defaultBuckets())
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures a point-in-time copy of every instrument. Updates
// racing the snapshot land in either this snapshot or the next — each
// individual instrument is read atomically.
func (r *Registry) Snapshot() *SnapshotData {
	s := &SnapshotData{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// SnapshotData is a point-in-time copy of a registry, JSON-serializable
// for run manifests and renderable as Prometheus text.
type SnapshotData struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// sortedKeys returns map keys in deterministic order for rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// global is the process-wide registry consulted by instrumentation sites.
// nil (the default) disables observability.
var global atomic.Pointer[Registry]

// Install makes r the process-wide registry picked up by every
// instrumented call site. Installing nil disables observability again.
func Install(r *Registry) { global.Store(r) }

// Installed returns the process-wide registry, or nil when observability
// is off. Instrumentation sites that update several metrics should load
// it once and reuse the result.
func Installed() *Registry { return global.Load() }

// Enabled reports whether a registry is installed.
func Enabled() bool { return global.Load() != nil }

// Inc bumps a counter on the installed registry (no-op when disabled).
func Inc(name string) { global.Load().Counter(name).Inc() }

// Add adds to a counter on the installed registry (no-op when disabled).
func Add(name string, n int64) { global.Load().Counter(name).Add(n) }

// Observe records a histogram sample on the installed registry (no-op
// when disabled).
func Observe(name string, v float64) { global.Load().Histogram(name).Observe(v) }

// SetGauge sets a gauge on the installed registry (no-op when disabled).
func SetGauge(name string, v float64) { global.Load().Gauge(name).Set(v) }

// Snapshot captures the installed registry (empty snapshot when disabled).
func Snapshot() *SnapshotData { return global.Load().Snapshot() }
