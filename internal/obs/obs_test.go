package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilInstrumentsNoOp covers every nil-safe path: a nil registry hands
// out nil instruments and all of them must silently discard updates.
func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Counter("c").Inc()
	r.Gauge("g").Set(3.5)
	r.Histogram("h").Observe(1)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %v", v)
	}
	if n := r.Histogram("h").Count(); n != 0 {
		t.Errorf("nil histogram count = %d", n)
	}
	if s := r.Histogram("h").Sum(); s != 0 {
		t.Errorf("nil histogram sum = %v", s)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

// TestGlobalDisabledNoOp exercises the package-level helpers with no
// registry installed.
func TestGlobalDisabledNoOp(t *testing.T) {
	Install(nil)
	if Enabled() {
		t.Fatal("Enabled() with no registry")
	}
	Inc("x")
	Add("x", 3)
	Observe("h", 1)
	SetGauge("g", 2)
	sp := StartSpan("stage")
	sp.End()
	s := Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("disabled snapshot not empty: %+v", s)
	}
}

// TestConcurrentUpdates hammers one counter, one gauge, and one histogram
// from many goroutines and checks the totals reconcile exactly. Run under
// -race this is the registry's central safety test.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Resolve by name every time: the map path must be as safe
				// as the cached-pointer path.
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(g))
				r.Histogram("h").Observe(float64(i%10) + 0.5)
			}
		}(g)
	}
	wg.Wait()
	const total = goroutines * perG
	if v := r.Counter("c").Value(); v != total {
		t.Errorf("counter = %d, want %d", v, total)
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != total {
		t.Errorf("histogram count = %d, want %d", h.Count, total)
	}
	// Each goroutine observes 0.5..9.5 cyclically: sum is exact in float64.
	wantSum := float64(goroutines) * float64(perG) / 10 * (0.5 + 1.5 + 2.5 + 3.5 + 4.5 + 5.5 + 6.5 + 7.5 + 8.5 + 9.5)
	if math.Abs(h.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %v, want %v", h.Sum, wantSum)
	}
	if h.Min != 0.5 || h.Max != 9.5 {
		t.Errorf("min/max = %v/%v, want 0.5/9.5", h.Min, h.Max)
	}
	if g := r.Gauge("g").Value(); g < 0 || g >= goroutines {
		t.Errorf("gauge = %v out of range", g)
	}
	// Cumulative buckets must be monotone and end at the total count.
	last := uint64(0)
	for _, b := range h.Buckets {
		if b.CumulativeCount < last {
			t.Fatalf("bucket counts not cumulative: %v", h.Buckets)
		}
		last = b.CumulativeCount
	}
	if last != total {
		t.Errorf("final cumulative bucket = %d, want %d", last, total)
	}
}

// TestConcurrentSnapshotConsistency snapshots while writers are active:
// the snapshot must never observe counts ahead of what was written, and a
// final quiescent snapshot must be exact.
func TestConcurrentSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perW = 1000
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if c := s.Counters["ops"]; c > writers*perW {
				t.Errorf("snapshot counter %d exceeds maximum %d", c, writers*perW)
				return
			}
			if h, ok := s.Histograms["lat"]; ok && h.Count > writers*perW {
				t.Errorf("snapshot histogram count %d exceeds maximum", h.Count)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			ops := r.Counter("ops")
			lat := r.Histogram("lat")
			for i := 0; i < perW; i++ {
				ops.Inc()
				lat.Observe(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	s := r.Snapshot()
	if s.Counters["ops"] != writers*perW {
		t.Errorf("final counter = %d, want %d", s.Counters["ops"], writers*perW)
	}
	if h := s.Histograms["lat"]; h.Count != writers*perW || h.Sum != writers*perW {
		t.Errorf("final histogram = %+v", h)
	}
}

func TestHistogramMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m")
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	if m := r.Snapshot().Histograms["m"].Mean(); m != 2 {
		t.Errorf("mean = %v, want 2", m)
	}
	var zero HistogramSnapshot
	if zero.Mean() != 0 {
		t.Error("empty mean != 0")
	}
}

func TestInstrumentIdentityStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name resolved to different counters")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Error("different names resolved to the same counter")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same name resolved to different gauges")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("same name resolved to different histograms")
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	Install(r)
	defer Install(nil)
	sp := StartSpan("ref_test_stage")
	sp.End()
	s := r.Snapshot()
	if s.Counters["ref_test_stage_total"] != 1 {
		t.Errorf("span counter = %d", s.Counters["ref_test_stage_total"])
	}
	h := s.Histograms["ref_test_stage_seconds"]
	if h.Count != 1 || h.Sum < 0 {
		t.Errorf("span histogram = %+v", h)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ref_jobs_total").Add(3)
	r.Counter(`ref_checks_total{property="SI",result="pass"}`).Add(2)
	r.Gauge("ref_width").Set(4)
	r.Histogram("ref_wait_seconds").Observe(0.25)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ref_jobs_total counter",
		"ref_jobs_total 3",
		"# TYPE ref_checks_total counter",
		`ref_checks_total{property="SI",result="pass"} 2`,
		"# TYPE ref_width gauge",
		"ref_width 4",
		"# TYPE ref_wait_seconds histogram",
		"ref_wait_seconds_sum 0.25",
		"ref_wait_seconds_count 1",
		`ref_wait_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The labeled and unlabeled ref_checks_total share one TYPE line.
	if n := strings.Count(out, "# TYPE ref_checks_total"); n != 1 {
		t.Errorf("TYPE emitted %d times for one base name", n)
	}
}
