package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("ref_sim_runs_total").Add(7)
	Install(r)
	defer Install(nil)

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "ref_sim_runs_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE ref_sim_runs_total counter") {
		t.Errorf("/metrics missing TYPE comment:\n%s", body)
	}

	// The endpoint reads the registry at scrape time: updates between
	// scrapes must be visible.
	r.Counter("ref_sim_runs_total").Add(1)
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, "ref_sim_runs_total 8") {
		t.Errorf("second scrape stale:\n%s", body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["ref_metrics"]; !ok {
		t.Error("/debug/vars missing ref_metrics")
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d, body %.80q", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999"); err == nil {
		t.Fatal("Serve accepted an impossible address")
	}
}

func TestServeWithoutRegistry(t *testing.T) {
	Install(nil)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d with no registry", code)
	}
	if strings.Contains(body, "ref_") {
		t.Errorf("expected empty exposition, got:\n%s", body)
	}
}
