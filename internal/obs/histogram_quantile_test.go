package obs

import (
	"math"
	"testing"
)

// Quantile edge cases, pinned against hand-built snapshots so the
// expected interpolation is exact.

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	// A nil histogram's Snapshot is the empty snapshot.
	var h *Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All 10 samples in one finite bucket (0, 8]: the lowest bucket
	// interpolates from 0, so the median lands mid-bucket.
	s := HistogramSnapshot{
		Count: 10, Sum: 40, Min: 2, Max: 6,
		Buckets: []Bucket{
			{UpperBound: 8, CumulativeCount: 10},
			{UpperBound: math.Inf(1), CumulativeCount: 10},
		},
	}
	if got := s.Quantile(0.5); got != 4 {
		t.Errorf("single-bucket Quantile(0.5) = %v, want 4 (interpolated from 0)", got)
	}
	// Interpolation toward the bound is capped at the observed max.
	if got := s.Quantile(0.99); got != 6 {
		t.Errorf("single-bucket Quantile(0.99) = %v, want Max 6", got)
	}
}

func TestQuantileClamping(t *testing.T) {
	s := HistogramSnapshot{
		Count: 4, Sum: 10, Min: 1, Max: 4,
		Buckets: []Bucket{
			{UpperBound: 2, CumulativeCount: 2},
			{UpperBound: 4, CumulativeCount: 4},
			{UpperBound: math.Inf(1), CumulativeCount: 4},
		},
	}
	if got, want := s.Quantile(0), s.Quantile(-3); got != want {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", want, got)
	}
	if got, want := s.Quantile(1), s.Quantile(17); got != want {
		t.Errorf("Quantile(17) = %v, want clamp to Quantile(1) = %v", want, got)
	}
	// q=0 has rank 0, satisfied by the first bucket at interpolated 0…
	if got := s.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	// …and q=1 is the full count, capped at the observed max.
	if got := s.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want Max 4", got)
	}
}

func TestQuantileAllInOverflow(t *testing.T) {
	// Every sample above the last finite bound: the +Inf bucket has no
	// upper bound to interpolate toward, so every quantile reports Max.
	s := HistogramSnapshot{
		Count: 3, Sum: 3000, Min: 900, Max: 1100,
		Buckets: []Bucket{
			{UpperBound: math.Inf(1), CumulativeCount: 3},
		},
	}
	for _, q := range []float64{0.1, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 1100 {
			t.Errorf("overflow-only Quantile(%v) = %v, want Max 1100", q, got)
		}
	}
}

func TestQuantileLiveHistogramOverflow(t *testing.T) {
	// End-to-end: observations beyond the ladder's top bound (~4.5e9)
	// land in +Inf and quantiles degrade to Max, not to garbage.
	r := NewRegistry()
	h := r.Histogram("overflow_test")
	h.Observe(1e12)
	h.Observe(2e12)
	snap := h.Snapshot()
	if got := snap.Quantile(0.5); got != 2e12 {
		t.Errorf("overflow Quantile(0.5) = %v, want Max 2e12", got)
	}
}
