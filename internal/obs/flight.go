package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FlightSchema identifies flight-recorder JSON payloads (live snapshots
// and anomaly dumps alike).
const FlightSchema = "ref/flightrec/v1"

// FlightOptions tunes a flight recorder.
type FlightOptions struct {
	// MaxDumps bounds the retained in-memory anomaly dumps; older dumps
	// roll off (default 8).
	MaxDumps int
	// Dir, when set, additionally writes each anomaly dump as a JSON
	// file flightrec-<seq>-<reason>.json in that directory.
	Dir string
}

// FlightDump is one anomaly-triggered capture: the full ring at the
// moment of the trigger, oldest record first.
type FlightDump[T any] struct {
	Schema string `json:"schema"`
	// Reason names the trigger, e.g. "audit_failure", "latency_breach",
	// "shed_spike".
	Reason string `json:"reason"`
	// Time is the trigger time (RFC3339Nano).
	Time string `json:"time"`
	// Seq is the total records ever recorded when the dump fired; dumps
	// of the same recorder order by it.
	Seq uint64 `json:"seq"`
	// Records is the ring at dump time, oldest first.
	Records []T `json:"records"`
	// File is the on-disk copy's path when a dump directory was
	// configured.
	File string `json:"file,omitempty"`
}

// FlightSnapshot is the live state served at the flight-recorder
// endpoint: the current ring plus any retained anomaly dumps.
type FlightSnapshot[T any] struct {
	Schema string `json:"schema"`
	// Enabled is false for the nil recorder (the endpoint still answers
	// 200 so probes can distinguish "off" from "broken").
	Enabled bool `json:"enabled"`
	// Size is the ring capacity.
	Size int `json:"size,omitempty"`
	// Seq is the total records ever recorded.
	Seq uint64 `json:"seq,omitempty"`
	// Records is the current ring, oldest first.
	Records []T `json:"records,omitempty"`
	// Dumps lists retained anomaly dumps, oldest first.
	Dumps []FlightDump[T] `json:"dumps,omitempty"`
}

// FlightRecorder keeps the last N records of type T in a bounded ring
// and captures the whole ring when an anomaly fires — a black box for
// reconstructing the moments before an audit failure or latency breach.
// The nil recorder no-ops, so call sites need no enabled-check.
//
// Unlike the metric instruments the recorder is mutex-guarded: records
// are structs, not words, and every caller in the serve path records
// from the single epoch goroutine, so the lock is uncontended.
type FlightRecorder[T any] struct {
	mu       sync.Mutex
	ring     []T
	head     int // next write index
	n        int // filled entries
	seq      uint64
	dumps    []FlightDump[T]
	maxDumps int
	dir      string
	// lastDump rearms per reason: a reason fires again only after the
	// ring has fully turned over since its previous dump, so a sustained
	// anomaly yields distinct captures instead of near-duplicates.
	lastDump map[string]uint64
}

// NewFlightRecorder returns a recorder retaining the last size records
// (minimum 1).
func NewFlightRecorder[T any](size int, opts FlightOptions) *FlightRecorder[T] {
	if size < 1 {
		size = 1
	}
	if opts.MaxDumps <= 0 {
		opts.MaxDumps = 8
	}
	return &FlightRecorder[T]{
		ring:     make([]T, size),
		maxDumps: opts.MaxDumps,
		dir:      opts.Dir,
		lastDump: make(map[string]uint64),
	}
}

// Record appends one record, evicting the oldest when the ring is full.
func (f *FlightRecorder[T]) Record(rec T) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ring[f.head] = rec
	f.head = (f.head + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.seq++
}

// records copies the ring oldest-first. Callers hold f.mu.
func (f *FlightRecorder[T]) recordsLocked() []T {
	out := make([]T, 0, f.n)
	start := f.head - f.n
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// Dump captures the current ring under the given reason. It reports
// whether a dump was taken — a reason that already dumped re-arms only
// after the ring fully turns over, so sustained anomalies produce
// distinct captures, not one per record. When a dump directory is
// configured the capture is also written as a JSON file (write errors
// are returned but the in-memory dump is kept regardless).
func (f *FlightRecorder[T]) Dump(reason string, now time.Time) (bool, string, error) {
	if f == nil {
		return false, "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if last, ok := f.lastDump[reason]; ok && f.seq < last+uint64(len(f.ring)) {
		return false, "", nil
	}
	f.lastDump[reason] = f.seq
	d := FlightDump[T]{
		Schema:  FlightSchema,
		Reason:  reason,
		Time:    now.UTC().Format(time.RFC3339Nano),
		Seq:     f.seq,
		Records: f.recordsLocked(),
	}
	var err error
	if f.dir != "" {
		d.File = filepath.Join(f.dir, fmt.Sprintf("flightrec-%06d-%s.json", f.seq, reason))
		var data []byte
		if data, err = json.MarshalIndent(d, "", "  "); err == nil {
			err = os.WriteFile(d.File, append(data, '\n'), 0o644)
		}
		if err != nil {
			err = fmt.Errorf("obs: flight dump: %w", err)
			d.File = ""
		}
	}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > f.maxDumps {
		f.dumps = f.dumps[len(f.dumps)-f.maxDumps:]
	}
	return true, d.File, err
}

// Dumps returns the retained anomaly dumps, oldest first.
func (f *FlightRecorder[T]) Dumps() []FlightDump[T] {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightDump[T](nil), f.dumps...)
}

// Snapshot returns the live ring and retained dumps. The nil recorder
// reports Enabled: false.
func (f *FlightRecorder[T]) Snapshot() FlightSnapshot[T] {
	if f == nil {
		return FlightSnapshot[T]{Schema: FlightSchema}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightSnapshot[T]{
		Schema:  FlightSchema,
		Enabled: true,
		Size:    len(f.ring),
		Seq:     f.seq,
		Records: f.recordsLocked(),
		Dumps:   append([]FlightDump[T](nil), f.dumps...),
	}
}
