package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-time expvar publication (expvar.Publish
// panics on duplicate names).
var expvarOnce sync.Once

// Handler returns the observability endpoint:
//
//	/metrics       Prometheus text exposition of the installed registry
//	/debug/vars    expvar JSON (includes the registry under "ref_metrics")
//	/debug/pprof/  the standard runtime profiles
//
// The handler reads the registry installed at scrape time, so it can be
// mounted before Install.
func Handler() http.Handler {
	expvarOnce.Do(func() {
		expvar.Publish("ref_metrics", expvar.Func(func() any { return Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ref observability endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns once the listener is bound, so Addr is
// immediately scrapeable.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (resolving a requested :0 port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
