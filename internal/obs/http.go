package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
)

// SetRuntimeProfileRate enables runtime block and mutex profiling at the
// given rate, exposing /debug/pprof/block and /debug/pprof/mutex with
// real data. rate ≤ 0 disables both again (the default: both profiles
// cost on every contended lock when enabled, so they are opt-in via
// -profile-rate on the serving CLIs).
func SetRuntimeProfileRate(rate int) {
	if rate <= 0 {
		runtime.SetBlockProfileRate(0)
		runtime.SetMutexProfileFraction(0)
		return
	}
	runtime.SetBlockProfileRate(rate)
	runtime.SetMutexProfileFraction(rate)
}

// expvarOnce guards the one-time expvar publication (expvar.Publish
// panics on duplicate names).
var expvarOnce sync.Once

// Handler returns the observability endpoint:
//
//	/metrics       Prometheus text exposition of the installed registry
//	/debug/vars    expvar JSON (includes the registry under "ref_metrics")
//	/debug/trace   Chrome trace-event JSON of the installed tracer
//	/debug/pprof/  the standard runtime profiles
//
// The handler reads the registry and tracer installed at scrape time, so
// it can be mounted before Install/InstallTracer. /debug/trace answers
// an empty (but well-formed) trace while no tracer is installed.
func Handler() http.Handler {
	expvarOnce.Do(func() {
		expvar.Publish("ref_metrics", expvar.Func(func() any { return Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, InstalledTracer())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ref observability endpoint\n\n/metrics\n/debug/vars\n/debug/trace\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns once the listener is bound, so Addr is
// immediately scrapeable.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (resolving a requested :0 port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
