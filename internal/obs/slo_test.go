package obs

import (
	"math"
	"testing"
	"time"
)

func TestSLOClassification(t *testing.T) {
	s := NewSLO("epoch_latency", 10*time.Millisecond, 0.1, 8)
	if !s.Observe(0.005) {
		t.Error("5ms under a 10ms objective classified bad")
	}
	if !s.Observe(0.010) {
		t.Error("exactly-at-objective classified bad (want good: bad is strictly over)")
	}
	if s.Observe(0.011) {
		t.Error("11ms over a 10ms objective classified good")
	}
	snap := s.Snapshot()
	if snap.Good != 2 || snap.Bad != 1 {
		t.Errorf("good/bad = %d/%d, want 2/1", snap.Good, snap.Bad)
	}
	if snap.Name != "epoch_latency" || snap.ObjectiveSeconds != 0.01 || snap.Budget != 0.1 {
		t.Errorf("snapshot header = %+v", snap)
	}
}

func TestSLOBurnRate(t *testing.T) {
	s := NewSLO("x", time.Millisecond, 0.25, 4)
	if got := s.BurnRate(); got != 0 {
		t.Errorf("burn rate before observations = %v, want 0", got)
	}
	// 1 bad of 2 seen: (1/2)/0.25 = 2.
	s.Observe(0.0005)
	s.Observe(0.002)
	if got := s.BurnRate(); math.Abs(got-2) > 1e-12 {
		t.Errorf("burn rate = %v, want 2", got)
	}
	// Window rolls: 4 good observations push the bad one out entirely.
	for i := 0; i < 4; i++ {
		s.Observe(0.0001)
	}
	if got := s.BurnRate(); got != 0 {
		t.Errorf("burn rate after window rolled = %v, want 0", got)
	}
	snap := s.Snapshot()
	if snap.WindowBad != 0 || snap.WindowSize != 4 {
		t.Errorf("window state = %d bad of %d", snap.WindowBad, snap.WindowSize)
	}
	// Cumulative counters never roll.
	if snap.Good != 5 || snap.Bad != 1 {
		t.Errorf("cumulative good/bad = %d/%d, want 5/1", snap.Good, snap.Bad)
	}
}

func TestSLODefaults(t *testing.T) {
	s := NewSLO("d", time.Second, 0, 0)
	if s.budget != 0.01 {
		t.Errorf("default budget = %v, want 0.01", s.budget)
	}
	if len(s.window) != 1024 {
		t.Errorf("default window = %d, want 1024", len(s.window))
	}
	if s2 := NewSLO("d", time.Second, 7, 1); s2.budget != 1 {
		t.Errorf("budget > 1 clamps to 1, got %v", s2.budget)
	}
}

func TestNilSLONoOps(t *testing.T) {
	var s *SLO
	if !s.Observe(99) {
		t.Error("nil SLO classified an observation bad")
	}
	if s.BurnRate() != 0 {
		t.Error("nil SLO has a burn rate")
	}
	if snap := s.Snapshot(); snap != (SLOSnapshot{}) {
		t.Errorf("nil snapshot = %+v", snap)
	}
}
