package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// ManifestSchema identifies the run-manifest JSON layout. Bump the
// version suffix on breaking changes so downstream tooling can dispatch.
const ManifestSchema = "ref/run-manifest/v1"

// RunRecord is one unit of work inside a manifest — typically one
// experiment ID or one workload sweep.
type RunRecord struct {
	// ID names the unit, e.g. "fig13" or "sweep:dedup".
	ID string `json:"id"`
	// Seconds is the unit's wall time.
	Seconds float64 `json:"seconds"`
	// Error is the failure message, empty on success.
	Error string `json:"error,omitempty"`
}

// Manifest is the structured record one CLI invocation writes with
// -run-manifest: enough configuration to reproduce the run and enough
// measurement to compare it against other runs. BENCH_*.json trajectory
// files and the CI manifest artifact share this format.
type Manifest struct {
	Schema      string   `json:"schema"`
	Tool        string   `json:"tool"`
	Args        []string `json:"args,omitempty"`
	StartedAt   string   `json:"started_at"`
	WallSeconds float64  `json:"wall_seconds"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	// Parallelism is the effective worker-pool width of the run.
	Parallelism int `json:"parallelism"`
	// Accesses is the per-configuration simulation budget.
	Accesses int `json:"accesses"`
	// Runs records each unit of work in execution order.
	Runs []RunRecord `json:"runs"`
	// Metrics is the registry snapshot taken when the manifest was
	// finalized.
	Metrics *SnapshotData `json:"metrics"`
	// SLO summarizes each service-level objective the run tracked
	// (epoch-latency good/bad counters and burn rate for serving tools).
	SLO []SLOSnapshot `json:"slo,omitempty"`
	// Trace is the Chrome trace-event export of the run's tracer, when
	// tracing was enabled — the same payload /debug/trace serves.
	Trace *ChromeTrace `json:"trace,omitempty"`
	// Replay summarizes each trace-replay scenario the run drove
	// (refreplay fills this; CI jq-asserts it).
	Replay []ReplayScenario `json:"replay,omitempty"`

	started time.Time
}

// ReplayScenario is one replayed trace's summary inside a manifest:
// identity, scale, the run digest the goldens pin, and every invariant
// finding (empty Violations is the pass criterion CI asserts).
type ReplayScenario struct {
	// Name is the scenario or trace name.
	Name string `json:"name"`
	// Seed is the generator seed the trace was synthesized with.
	Seed int64 `json:"seed"`
	// Events, Epochs, FinalAgents, and PeakAgents size the replay.
	Events      int `json:"events"`
	Epochs      int `json:"epochs"`
	FinalAgents int `json:"final_agents"`
	PeakAgents  int `json:"peak_agents"`
	// Checks counts invariant evaluations the harness ran inline.
	Checks int `json:"checks"`
	// Digest is the run digest (sha256 over the per-epoch snapshot
	// digests); bit-identical replays produce equal digests.
	Digest string `json:"digest"`
	// Violations lists invariant findings; empty means the replay passed.
	Violations []string `json:"violations"`
	// FlightDumps counts anomaly dumps the flight recorder captured.
	FlightDumps int `json:"flight_dumps,omitempty"`
	// Seconds is the replay's wall time.
	Seconds float64 `json:"seconds"`
}

// RecordReplay appends one replay summary.
func (m *Manifest) RecordReplay(r ReplayScenario) {
	m.Replay = append(m.Replay, r)
}

// AttachTrace embeds t's Chrome export into the manifest; a nil or empty
// tracer leaves the manifest unchanged.
func (m *Manifest) AttachTrace(t *Tracer) {
	if t == nil || t.Len() == 0 {
		return
	}
	m.Trace = t.Chrome()
}

// NewManifest starts a manifest for the named tool, stamping environment
// facts and the start time.
func NewManifest(tool string, args []string) *Manifest {
	now := time.Now()
	return &Manifest{
		Schema:     ManifestSchema,
		Tool:       tool,
		Args:       args,
		StartedAt:  now.UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		started:    now,
	}
}

// Record appends one unit of work.
func (m *Manifest) Record(id string, seconds float64, err error) {
	rec := RunRecord{ID: id, Seconds: seconds}
	if err != nil {
		rec.Error = err.Error()
	}
	m.Runs = append(m.Runs, rec)
}

// WriteFile finalizes the manifest — total wall time and the metric
// snapshot of the installed registry — and writes it as indented JSON via
// a same-directory temp file and rename, so readers never observe a
// partial manifest.
func (m *Manifest) WriteFile(path string) error {
	m.WallSeconds = time.Since(m.started).Seconds()
	m.Metrics = Snapshot()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifestFile parses a manifest written by WriteFile.
func ReadManifestFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: manifest %s has schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}
