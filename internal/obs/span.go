package obs

import "time"

// Span times one logical stage (a grid sweep, a profiling pass, an
// allocation epoch). Ending a span records its duration into the
// histogram <name>_seconds and bumps the counter <name>_total on the
// registry that was installed when the span started; when a tracer is
// also installed, End emits a trace event carrying the span's ID, its
// parent link (for spans started with StartChild), and any attributes
// passed to End.
//
// StartSpan resolves the histogram/counter handles once, through the
// registry's span-handle cache, so End never concatenates metric names
// or takes the registry mutex — the enabled steady state is
// allocation-free (the tracer path costs one Event allocation per
// span, by design: events are immutable ring entries).
//
// When both observability and tracing are disabled StartSpan returns the
// zero Span and End is a no-op: no clock read, no allocation.
type Span struct {
	name   string
	start  time.Time
	hist   *Histogram
	total  *Counter
	tr     *Tracer
	id     uint64
	parent uint64
}

// StartSpan begins timing a stage against the installed registry and
// tracer.
func StartSpan(name string) Span {
	r := Installed()
	tr := InstalledTracer()
	if r == nil && tr == nil {
		return Span{}
	}
	s := Span{name: name, start: time.Now(), tr: tr}
	if r != nil {
		s.hist, s.total = r.spanInstruments(name)
	}
	if tr != nil {
		s.id = tr.NewID()
	}
	return s
}

// StartChild begins a span parent-linked to s, so trace viewers nest it
// under s's interval. With tracing off it is identical to StartSpan.
func (s Span) StartChild(name string) Span {
	c := StartSpan(name)
	c.parent = s.id
	return c
}

// ID returns the span's trace identifier (0 with tracing off).
func (s Span) ID() uint64 { return s.id }

// End records the span, attaching attrs to the trace event when tracing
// is on. Safe to call on the zero Span.
func (s Span) End(attrs ...Attr) {
	if s.hist == nil && s.tr == nil {
		return
	}
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
		s.total.Inc()
	}
	if s.tr != nil {
		e := &Event{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Dur: d}
		e.SetAttrs(attrs...)
		s.tr.Emit(e)
	}
}
