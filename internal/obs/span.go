package obs

import "time"

// Span times one logical stage (a grid sweep, a profiling pass, an
// experiment). Ending a span records its duration into the histogram
// <name>_seconds and bumps the counter <name>_total on the registry that
// was installed when the span started.
//
// When observability is disabled StartSpan returns the zero Span and End
// is a no-op: no clock read, no allocation.
type Span struct {
	name  string
	start time.Time
	r     *Registry
}

// StartSpan begins timing a stage against the installed registry.
func StartSpan(name string) Span {
	r := Installed()
	if r == nil {
		return Span{}
	}
	return Span{name: name, start: time.Now(), r: r}
}

// End records the span. Safe to call on the zero Span.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.Histogram(s.name + "_seconds").Observe(time.Since(s.start).Seconds())
	s.r.Counter(s.name + "_total").Inc()
}
