package cliutil

import (
	"flag"
	"testing"
	"time"
)

// TestSharedFlagsParse pins the canonical names and defaults: one flag
// set carrying all shared flags parses a full command line, and the zero
// command line yields the documented defaults.
func TestSharedFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var (
		par      int
		metrics  string
		manifest string
		seed     int64
		credit   CreditFlags
	)
	ParallelismVar(fs, &par)
	MetricsAddrVar(fs, &metrics)
	RunManifestVar(fs, &manifest)
	SeedVar(fs, &seed, "")
	CreditVar(fs, &credit)

	if err := fs.Parse([]string{
		"-parallelism", "4", "-metrics-addr", ":9090", "-run-manifest", "m.json",
		"-seed", "42", "-half-life", "30s", "-credit-min", "0.6", "-credit-max", "1.5",
	}); err != nil {
		t.Fatal(err)
	}
	if par != 4 || metrics != ":9090" || manifest != "m.json" || seed != 42 {
		t.Fatalf("parsed %d %q %q %d", par, metrics, manifest, seed)
	}
	if credit.HalfLife != 30*time.Second || credit.MinBudget != 0.6 || credit.MaxBudget != 1.5 {
		t.Fatalf("parsed credit %+v", credit)
	}
	if !credit.Enabled() {
		t.Fatal("half-life 30s should enable credits")
	}
	if err := credit.Validate(); err != nil {
		t.Fatal(err)
	}

	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	var seed2 int64
	var credit2 CreditFlags
	SeedVar(fs2, &seed2, "")
	CreditVar(fs2, &credit2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if seed2 != 1 {
		t.Fatalf("default seed %d, want 1", seed2)
	}
	if credit2.Enabled() {
		t.Fatal("credits default to off")
	}
	if err := credit2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCreditFlagsValidate: clamps without a half-life are an operator
// error, not a silent no-op.
func TestCreditFlagsValidate(t *testing.T) {
	c := CreditFlags{MinBudget: 0.5}
	if err := c.Validate(); err == nil {
		t.Fatal("-credit-min without -half-life should be rejected")
	}
	c = CreditFlags{MaxBudget: 2}
	if err := c.Validate(); err == nil {
		t.Fatal("-credit-max without -half-life should be rejected")
	}
	c = CreditFlags{HalfLife: time.Minute, MinBudget: 0.5, MaxBudget: 2}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestParseFloats pins the capacity wire format.
func TestParseFloats(t *testing.T) {
	got, err := ParseFloats(" 24, 12 ")
	if err != nil || len(got) != 2 || got[0] != 24 || got[1] != 12 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseFloats("24,x"); err == nil {
		t.Fatal("bad number accepted")
	}
}
