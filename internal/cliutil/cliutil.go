// Package cliutil declares the flags every REF command shares — the same
// names, defaults, and help text everywhere, written once. Before this
// package each of the six CLIs carried its own slightly-divergent copy of
// -parallelism, -metrics-addr, -run-manifest, and -seed; divergence in
// help text was harmless, divergence in defaults would not have been.
package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Canonical help strings. Commands that need to say more do it in their
// package comment, not by forking the flag text.
const (
	parallelismUsage = "worker pool width (0 = $REF_PARALLELISM, else GOMAXPROCS)"
	metricsUsage     = "serve /metrics, /debug/vars and /debug/pprof on this address for the run's duration"
	manifestUsage    = "write a structured JSON run manifest to this path on exit"
	seedUsage        = "deterministic base seed"
)

// ParallelismVar registers the canonical -parallelism flag on fs.
func ParallelismVar(fs *flag.FlagSet, p *int) {
	fs.IntVar(p, "parallelism", 0, parallelismUsage)
}

// MetricsAddrVar registers the canonical -metrics-addr flag on fs.
func MetricsAddrVar(fs *flag.FlagSet, p *string) {
	fs.StringVar(p, "metrics-addr", "", metricsUsage)
}

// RunManifestVar registers the canonical -run-manifest flag on fs.
func RunManifestVar(fs *flag.FlagSet, p *string) {
	fs.StringVar(p, "run-manifest", "", manifestUsage)
}

// SeedVar registers the canonical -seed flag on fs. The default is 1 —
// every REF command's runs are reproducible by construction, so there is
// no "random" seed to fall back to. A non-empty usage overrides the
// generic text with the command's specific meaning of the seed.
func SeedVar(fs *flag.FlagSet, p *int64, usage string) {
	if usage == "" {
		usage = seedUsage
	}
	fs.Int64Var(p, "seed", 1, usage)
}

// CreditFlags bundles the time-aware credit-ledger flags shared by the
// commands that boot or replay an allocation server. The zero value means
// credits off — the byte-identical classic path.
type CreditFlags struct {
	// HalfLife is the usage half-life; 0 disables the ledger entirely.
	HalfLife time.Duration
	// MinBudget / MaxBudget clamp the budget tilt (0 = serve defaults).
	MinBudget float64
	MaxBudget float64
}

// CreditVar registers -half-life, -credit-min, and -credit-max on fs.
func CreditVar(fs *flag.FlagSet, c *CreditFlags) {
	fs.DurationVar(&c.HalfLife, "half-life", 0,
		"credit-ledger usage half-life; sustained over-use tilts budgets down, thrift tilts them up (0 = credits off)")
	fs.Float64Var(&c.MinBudget, "credit-min", 0,
		"credit budget floor in (0,1] (0 = default 0.5; needs -half-life)")
	fs.Float64Var(&c.MaxBudget, "credit-max", 0,
		"credit budget ceiling ≥ 1 (0 = default 2; needs -half-life)")
}

// Enabled reports whether the flags ask for the ledger at all.
func (c *CreditFlags) Enabled() bool { return c.HalfLife > 0 }

// Validate rejects clamp flags without a half-life — silently ignoring
// them would read as "credits on" to the operator.
func (c *CreditFlags) Validate() error {
	if !c.Enabled() && (c.MinBudget != 0 || c.MaxBudget != 0) {
		return fmt.Errorf("-credit-min/-credit-max need -half-life > 0")
	}
	return nil
}

// ParseFloats parses a comma-separated float list ("24,12"), the wire
// format of every capacity flag.
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
