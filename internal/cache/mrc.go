package cache

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadTrace reports an unusable reference stream for MRC construction.
var ErrBadTrace = errors.New("cache: bad trace")

// MRC is a miss-ratio curve: the fraction of references that miss in a
// fully-associative LRU cache, as a function of capacity in blocks. It is
// built with Mattson's stack algorithm in a single pass over a reference
// stream, so one profiling run predicts the hit ratio of *every* capacity
// at once — the analytical fast path that cross-checks the event-driven
// simulator and lets callers reason about cache sensitivity without
// sweeping.
type MRC struct {
	// histogram[d] counts references with stack distance d (reuses of the
	// d+1-st most recently used block); cold misses are counted
	// separately.
	histogram []uint64
	cold      uint64
	total     uint64
}

// BuildMRC runs Mattson's stack algorithm over block addresses. The stream
// must be non-empty.
func BuildMRC(addrs []uint64, blockBytes int) (*MRC, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrBadTrace)
	}
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("%w: block size %d", ErrBadTrace, blockBytes)
	}
	m := &MRC{}
	// LRU stack as a doubly-linked list with a per-block node index.
	// Finding a block's stack distance walks from the head, so the whole
	// pass costs O(Σ distances) — cheap for the locality-heavy streams
	// this is used on, with no per-access global updates.
	type node struct {
		block      uint64
		prev, next *node
	}
	var head *node
	nodes := make(map[uint64]*node, 1024)
	pushFront := func(n *node) {
		n.prev = nil
		n.next = head
		if head != nil {
			head.prev = n
		}
		head = n
	}
	for _, a := range addrs {
		block := a / uint64(blockBytes)
		m.total++
		n, seen := nodes[block]
		if !seen {
			m.cold++
			n = &node{block: block}
			nodes[block] = n
			pushFront(n)
			continue
		}
		// Count distinct blocks above n.
		d := 0
		for cur := head; cur != n; cur = cur.next {
			d++
		}
		for len(m.histogram) <= d {
			m.histogram = append(m.histogram, 0)
		}
		m.histogram[d]++
		if n != head {
			// Unlink and move to front.
			n.prev.next = n.next
			if n.next != nil {
				n.next.prev = n.prev
			}
			pushFront(n)
		}
	}
	return m, nil
}

// MissRatio predicts the miss ratio of a fully-associative LRU cache with
// the given capacity in blocks: references at stack distance ≥ capacity
// miss, plus all cold references.
func (m *MRC) MissRatio(capacityBlocks int) float64 {
	if m.total == 0 {
		return 0
	}
	if capacityBlocks <= 0 {
		return 1
	}
	var hits uint64
	limit := capacityBlocks
	if limit > len(m.histogram) {
		limit = len(m.histogram)
	}
	for d := 0; d < limit; d++ {
		hits += m.histogram[d]
	}
	return 1 - float64(hits)/float64(m.total)
}

// ColdRatio returns the fraction of references that are compulsory misses.
func (m *MRC) ColdRatio() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.cold) / float64(m.total)
}

// Curve samples the MRC at the given capacities (blocks), returned in the
// same order.
func (m *MRC) Curve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = m.MissRatio(c)
	}
	return out
}

// CapacityForMissRatio returns the smallest capacity (in blocks) whose
// predicted miss ratio is at most target, or -1 if even holding every
// distinct block cannot reach it (cold misses set the floor).
func (m *MRC) CapacityForMissRatio(target float64) int {
	if m.MissRatio(len(m.histogram)) > target {
		return -1
	}
	return sort.Search(len(m.histogram), func(c int) bool {
		return m.MissRatio(c+1) <= target
	}) + 1
}
