package cache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ref/internal/trace"
)

func l1Config() Config {
	// Table 1: 32 KB, 4-way, 64-byte blocks, 2-cycle latency.
	return Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 64, HitLatency: 2}
}

func TestConfigValidate(t *testing.T) {
	if err := l1Config().Validate(); err != nil {
		t.Fatalf("Table-1 L1 rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 4, BlockBytes: 64},
		{SizeBytes: 32 << 10, Ways: 0, BlockBytes: 64},
		{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 48},        // not power of two
		{SizeBytes: 31 << 10, Ways: 4, BlockBytes: 64},        // not divisible
		{SizeBytes: 3 * 64 * 4 * 64, Ways: 4, BlockBytes: 64}, // 192 sets
		{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 64, HitLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(l1Config())
	if err != nil {
		t.Fatal(err)
	}
	if res := c.Access(0x1000, false); res.Hit {
		t.Fatal("cold access hit")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Fatal("warm access missed")
	}
	if res := c.Access(0x1000+32, false); !res.Hit {
		t.Fatal("same-block access missed")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 4-way cache: access 5 distinct blocks mapping to the same set; the
	// first must be evicted, the rest retained.
	cfg := l1Config()
	c, _ := New(cfg)
	sets := uint64(cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes))
	stride := sets * uint64(cfg.BlockBytes) // same set, different tag
	for i := uint64(0); i < 5; i++ {
		c.Access(i*stride, false)
	}
	if c.Contains(0) {
		t.Error("LRU victim still resident")
	}
	for i := uint64(1); i < 5; i++ {
		if !c.Contains(i * stride) {
			t.Errorf("block %d evicted prematurely", i)
		}
	}
	// Touch block 1, then fill: block 2 should now be the victim.
	c.Access(1*stride, false)
	c.Access(5*stride, false)
	if !c.Contains(1 * stride) {
		t.Error("recently-touched block evicted")
	}
	if c.Contains(2 * stride) {
		t.Error("LRU block survived")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := l1Config()
	c, _ := New(cfg)
	sets := uint64(cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes))
	stride := sets * uint64(cfg.BlockBytes)
	c.Access(0, true) // dirty
	for i := uint64(1); i <= 4; i++ {
		c.Access(i*stride, false)
	}
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Writebacks)
	}
}

func TestEvictedAddrRoundTrip(t *testing.T) {
	cfg := Config{SizeBytes: 4096, Ways: 1, BlockBytes: 64, HitLatency: 1}
	c, _ := New(cfg)
	addr := uint64(0x12340)
	addr -= addr % 64
	c.Access(addr, true)
	// Evict it with a conflicting address (same set, different tag).
	sets := uint64(cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes))
	conflict := addr + sets*uint64(cfg.BlockBytes)
	res := c.Access(conflict, false)
	if !res.Writeback {
		t.Fatal("no writeback")
	}
	if res.EvictedAddr != addr {
		t.Fatalf("EvictedAddr = %#x, want %#x", res.EvictedAddr, addr)
	}
}

func TestFlush(t *testing.T) {
	c, _ := New(l1Config())
	c.Access(0, true)
	c.Access(64, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("Flush dirty = %d, want 1", dirty)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("blocks survive flush")
	}
}

func TestMissRateDecreasesWithCapacity(t *testing.T) {
	// The fundamental behavior Figure 8 depends on: for a workload with a
	// fixed working set, bigger LLCs miss less, with diminishing returns.
	g := func() *trace.Generator {
		gen, err := trace.NewGenerator(trace.Config{
			// A working set spanning the whole 128 KB–2 MB sweep with a
			// flat-ish power law puts substantial reuse mass at every
			// capacity step.
			Name: "t", MemOpsPerKiloInstr: 300, WorkingSetBlocks: 32768,
			ReuseTheta: 0.9, StreamFraction: 0.01, WriteFraction: 0.3, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return gen
	}
	var rates []float64
	for _, size := range []int{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20} {
		c, err := New(Config{SizeBytes: size, Ways: 8, BlockBytes: 64, HitLatency: 20})
		if err != nil {
			t.Fatal(err)
		}
		gen := g()
		for i := 0; i < 60000; i++ {
			a := gen.Next()
			c.Access(a.Addr, a.Write)
		}
		rates = append(rates, c.Stats().MissRate())
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1]+1e-3 {
			t.Errorf("miss rate increased with capacity: %.4f -> %.4f", rates[i-1], rates[i])
		}
	}
	first, last := rates[0], rates[len(rates)-1]
	if last > first*0.8 {
		t.Errorf("no meaningful capacity benefit: %.4f -> %.4f", first, last)
	}
	if last > 0.5 {
		t.Errorf("2 MB miss rate %.3f too high for cache-friendly workload", last)
	}
}

func TestStreamingDefeatsCache(t *testing.T) {
	gen, err := trace.NewGenerator(trace.Config{
		Name: "s", MemOpsPerKiloInstr: 300, WorkingSetBlocks: 100000,
		ReuseTheta: 0.7, StreamFraction: 0.4, WriteFraction: 0.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(Config{SizeBytes: 2 << 20, Ways: 8, BlockBytes: 64, HitLatency: 20})
	for i := 0; i < 60000; i++ {
		a := gen.Next()
		c.Access(a.Addr, a.Write)
	}
	if mr := c.Stats().MissRate(); mr < 0.35 {
		t.Errorf("streaming miss rate %.3f too low even at 2 MB", mr)
	}
}

func TestPartitionedIsolation(t *testing.T) {
	cfg := Config{SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64, HitLatency: 20}
	p, err := NewPartitioned(cfg, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Agent 0 warms a block; agent 1 thrashing its own partition must not
	// evict it.
	p.Access(0, 0x4000, false)
	for i := uint64(0); i < 10000; i++ {
		p.Access(1, i*64, false)
	}
	if res := p.Access(0, 0x4000, false); !res.Hit {
		t.Fatal("agent 1 evicted agent 0's block across the partition")
	}
	if p.Ways(0) != 4 || p.CapacityBytes(0) != 32<<10 {
		t.Errorf("partition geometry wrong: ways=%d cap=%d", p.Ways(0), p.CapacityBytes(0))
	}
	if p.Stats(1).Accesses() != 10000 {
		t.Errorf("agent 1 accesses = %d", p.Stats(1).Accesses())
	}
}

func TestNewPartitionedValidation(t *testing.T) {
	cfg := Config{SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64}
	if _, err := NewPartitioned(cfg, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("no agents accepted")
	}
	if _, err := NewPartitioned(cfg, []int{0, 8}); !errors.Is(err, ErrBadConfig) {
		t.Error("zero ways accepted")
	}
	if _, err := NewPartitioned(cfg, []int{5, 5}); !errors.Is(err, ErrBadConfig) {
		t.Error("overcommitted ways accepted")
	}
}

func TestWaysForShare(t *testing.T) {
	cfg := Config{SizeBytes: 8 << 20 / 4, Ways: 8, BlockBytes: 64} // 2 MB, 8 ways
	// 2 MB cache: each way is 256 KB. Shares 1.5 MB / 0.5 MB → 6 / 2 ways.
	ways, err := WaysForShare(cfg, []float64{1.5 * 1024 * 1024, 0.5 * 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if ways[0] != 6 || ways[1] != 2 {
		t.Fatalf("ways = %v, want [6 2]", ways)
	}
}

func TestWaysForShareMinimumOneWay(t *testing.T) {
	cfg := Config{SizeBytes: 2 << 20, Ways: 8, BlockBytes: 64}
	ways, err := WaysForShare(cfg, []float64{2 << 20, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ways[1] < 1 {
		t.Fatalf("starved agent got %d ways", ways[1])
	}
	sum := ways[0] + ways[1]
	if sum > cfg.Ways {
		t.Fatalf("ways %v exceed budget", ways)
	}
}

func TestWaysForShareErrors(t *testing.T) {
	cfg := Config{SizeBytes: 2 << 20, Ways: 8, BlockBytes: 64}
	if _, err := WaysForShare(cfg, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("no shares accepted")
	}
	if _, err := WaysForShare(cfg, []float64{-1}); !errors.Is(err, ErrBadConfig) {
		t.Error("negative share accepted")
	}
	nine := make([]float64, 9)
	for i := range nine {
		nine[i] = 1
	}
	if _, err := WaysForShare(cfg, nine); !errors.Is(err, ErrBadConfig) {
		t.Error("more agents than ways accepted")
	}
}

// Property: hits + misses == accesses and the cache never reports a hit for
// an address it has never seen.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{SizeBytes: 16 << 10, Ways: 2, BlockBytes: 64, HitLatency: 1})
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		n := 3000
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(1000)) * 64
			block := addr
			res := c.Access(addr, rng.Intn(2) == 0)
			if res.Hit && !seen[block] {
				return false
			}
			seen[block] = true
		}
		s := c.Stats()
		return s.Accesses() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
