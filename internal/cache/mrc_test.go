package cache

import (
	"errors"
	"math"
	"testing"

	"ref/internal/trace"
)

func TestBuildMRCValidation(t *testing.T) {
	if _, err := BuildMRC(nil, 64); !errors.Is(err, ErrBadTrace) {
		t.Error("empty stream accepted")
	}
	if _, err := BuildMRC([]uint64{0}, 48); !errors.Is(err, ErrBadTrace) {
		t.Error("non-power-of-two block accepted")
	}
	if _, err := BuildMRC([]uint64{0}, 0); !errors.Is(err, ErrBadTrace) {
		t.Error("zero block size accepted")
	}
}

func TestMRCSimpleLoop(t *testing.T) {
	// Cyclic walk over 4 blocks, 3 rounds: distances after warmup are all
	// 3 (three distinct blocks between reuses).
	var addrs []uint64
	for round := 0; round < 3; round++ {
		for b := uint64(0); b < 4; b++ {
			addrs = append(addrs, b*64)
		}
	}
	m, err := BuildMRC(addrs, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 4 cold misses out of 12 references.
	if got := m.ColdRatio(); math.Abs(got-4.0/12) > 1e-12 {
		t.Errorf("ColdRatio = %v", got)
	}
	// Capacity 4 holds the loop: only cold misses remain.
	if got := m.MissRatio(4); math.Abs(got-4.0/12) > 1e-12 {
		t.Errorf("MissRatio(4) = %v, want cold-only", got)
	}
	// Capacity 3 thrashes: everything misses (classic LRU loop pathology).
	if got := m.MissRatio(3); got != 1 {
		t.Errorf("MissRatio(3) = %v, want 1", got)
	}
	if got := m.MissRatio(0); got != 1 {
		t.Errorf("MissRatio(0) = %v", got)
	}
}

func TestMRCMonotoneNonIncreasing(t *testing.T) {
	gen, err := trace.NewGenerator(trace.Config{
		Name: "m", MemOpsPerKiloInstr: 200, WorkingSetBlocks: 4096,
		HotFraction: 0.9, ReuseTheta: 0.6, StreamFraction: 0.01,
		WriteFraction: 0.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]uint64, 20000)
	for i := range addrs {
		addrs[i] = gen.Next().Addr
	}
	m, err := BuildMRC(addrs, 64)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, c := range []int{1, 16, 64, 256, 1024, 4096, 16384} {
		mr := m.MissRatio(c)
		if mr > prev+1e-12 {
			t.Fatalf("miss ratio increased with capacity at %d: %v > %v", c, mr, prev)
		}
		if mr < m.ColdRatio()-1e-12 {
			t.Fatalf("miss ratio %v below the cold floor %v", mr, m.ColdRatio())
		}
		prev = mr
	}
}

// The headline cross-check: Mattson's one-pass prediction matches the
// event-driven simulator for a fully-associative-like (high-associativity)
// cache on the same stream.
func TestMRCMatchesSimulatedCache(t *testing.T) {
	gen, err := trace.NewGenerator(trace.Config{
		Name: "x", MemOpsPerKiloInstr: 200, WorkingSetBlocks: 3000,
		HotFraction: 0.9, ReuseTheta: 0.7, StreamFraction: 0.005,
		WriteFraction: 0.25, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 30000
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = gen.Next().Addr
	}
	m, err := BuildMRC(addrs, 64)
	if err != nil {
		t.Fatal(err)
	}
	// 16-way caches approximate full associativity well at these sizes.
	for _, blocks := range []int{512, 1024, 2048} {
		c, err := New(Config{SizeBytes: blocks * 64, Ways: 16, BlockBytes: 64, HitLatency: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range addrs {
			c.Access(a, false)
		}
		sim := c.Stats().MissRate()
		pred := m.MissRatio(blocks)
		if math.Abs(sim-pred) > 0.03 {
			t.Errorf("capacity %d blocks: simulated %v vs Mattson %v", blocks, sim, pred)
		}
	}
}

func TestMRCCapacityForMissRatio(t *testing.T) {
	// Loop over 8 blocks repeatedly: target below cold floor unreachable;
	// the loop needs exactly 8 blocks to stop thrashing.
	var addrs []uint64
	for round := 0; round < 10; round++ {
		for b := uint64(0); b < 8; b++ {
			addrs = append(addrs, b*64)
		}
	}
	m, err := BuildMRC(addrs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CapacityForMissRatio(0.5); got != 8 {
		t.Errorf("CapacityForMissRatio(0.5) = %d, want 8", got)
	}
	if got := m.CapacityForMissRatio(0); got != -1 {
		t.Errorf("CapacityForMissRatio(0) = %d, want -1 (cold floor)", got)
	}
}

func TestMRCCurve(t *testing.T) {
	m, err := BuildMRC([]uint64{0, 64, 0, 64}, 64)
	if err != nil {
		t.Fatal(err)
	}
	curve := m.Curve([]int{1, 2})
	if len(curve) != 2 {
		t.Fatal("curve length")
	}
	if curve[1] >= curve[0] && curve[0] != curve[1] {
		t.Errorf("curve not non-increasing: %v", curve)
	}
	// With capacity 2 both reuses hit: miss ratio = 2 cold / 4.
	if math.Abs(curve[1]-0.5) > 1e-12 {
		t.Errorf("MissRatio(2) = %v, want 0.5", curve[1])
	}
}
