package cache

import (
	"fmt"
)

// Partitioned is a way-partitioned shared cache: each agent owns a disjoint
// subset of the ways in every set, so one agent's fills can never evict
// another agent's blocks. This is the standard hardware mechanism for
// enforcing an LLC capacity allocation and is how the reproduction's
// co-run simulator enforces the cache share a mechanism computes.
type Partitioned struct {
	cfg    Config
	sets   int
	agents int
	// perAgent[i] is a private sub-cache with wayCounts[i] ways.
	perAgent []*Cache
	ways     []int
}

// NewPartitioned divides a cache of the given geometry among agents with
// wayCounts[i] ways each. The counts must be positive and sum to at most
// cfg.Ways.
func NewPartitioned(cfg Config, wayCounts []int) (*Partitioned, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(wayCounts) == 0 {
		return nil, fmt.Errorf("%w: no agents", ErrBadConfig)
	}
	total := 0
	for i, w := range wayCounts {
		if w <= 0 {
			return nil, fmt.Errorf("%w: agent %d gets %d ways", ErrBadConfig, i, w)
		}
		total += w
	}
	if total > cfg.Ways {
		return nil, fmt.Errorf("%w: %d ways assigned, cache has %d", ErrBadConfig, total, cfg.Ways)
	}
	p := &Partitioned{
		cfg:    cfg,
		sets:   cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes),
		agents: len(wayCounts),
		ways:   append([]int(nil), wayCounts...),
	}
	for i, w := range wayCounts {
		sub, err := New(Config{
			SizeBytes:  p.sets * w * cfg.BlockBytes,
			Ways:       w,
			BlockBytes: cfg.BlockBytes,
			HitLatency: cfg.HitLatency,
		})
		if err != nil {
			return nil, fmt.Errorf("cache: partition %d: %w", i, err)
		}
		p.perAgent = append(p.perAgent, sub)
	}
	return p, nil
}

// Access performs an access on behalf of agent.
func (p *Partitioned) Access(agent int, addr uint64, write bool) AccessResult {
	return p.perAgent[agent].Access(addr, write)
}

// Stats returns agent's statistics.
func (p *Partitioned) Stats(agent int) Stats { return p.perAgent[agent].Stats() }

// Ways returns agent's way count.
func (p *Partitioned) Ways(agent int) int { return p.ways[agent] }

// CapacityBytes returns agent's partition capacity.
func (p *Partitioned) CapacityBytes(agent int) int {
	return p.sets * p.ways[agent] * p.cfg.BlockBytes
}

// WaysForShare converts a byte share of a cache into a way count, rounding
// to the nearest way but never below one (a zero-way partition would
// deadlock the agent). shares must sum to at most the cache's capacity.
func WaysForShare(cfg Config, shareBytes []float64) ([]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(shareBytes)
	if n == 0 {
		return nil, fmt.Errorf("%w: no shares", ErrBadConfig)
	}
	if n > cfg.Ways {
		return nil, fmt.Errorf("%w: %d agents exceed %d ways", ErrBadConfig, n, cfg.Ways)
	}
	bytesPerWay := float64(cfg.SizeBytes) / float64(cfg.Ways)
	ways := make([]int, n)
	assigned := 0
	for i, s := range shareBytes {
		if s < 0 {
			return nil, fmt.Errorf("%w: negative share %v", ErrBadConfig, s)
		}
		w := int(s/bytesPerWay + 0.5)
		if w < 1 {
			w = 1
		}
		ways[i] = w
		assigned += w
	}
	// Trim overshoot from the largest partitions (rounding can exceed the
	// way budget); grow undershoot is fine — unassigned ways stay idle,
	// mirroring a conservative hardware partitioner.
	for assigned > cfg.Ways {
		max := 0
		for i, w := range ways {
			if w > ways[max] {
				_ = i
				max = i
			}
		}
		if ways[max] <= 1 {
			return nil, fmt.Errorf("%w: cannot fit %d agents in %d ways", ErrBadConfig, n, cfg.Ways)
		}
		ways[max]--
		assigned--
	}
	return ways, nil
}
