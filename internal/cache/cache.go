// Package cache implements the set-associative cache models of the
// reproduction's platform simulator (Table 1 of the REF paper): a 32 KB
// 4-way L1 and a last-level cache whose capacity sweeps 128 KB–2 MB. Caches
// use true-LRU replacement and 64-byte blocks. The LLC additionally
// supports way partitioning, the enforcement mechanism used when multiple
// agents share the cache under an allocation.
package cache

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrBadConfig reports invalid cache geometry.
var ErrBadConfig = errors.New("cache: bad config")

// Config describes cache geometry.
type Config struct {
	// SizeBytes is total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// BlockBytes is the line size.
	BlockBytes int
	// HitLatency is the access latency in cycles.
	HitLatency int
}

// Validate checks the geometry: power-of-two sets, positive parameters.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 || c.HitLatency < 0 {
		return fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("%w: block size %d not a power of two", ErrBadConfig, c.BlockBytes)
	}
	if c.SizeBytes%(c.Ways*c.BlockBytes) != 0 {
		return fmt.Errorf("%w: size %d not divisible by ways×block %d", ErrBadConfig, c.SizeBytes, c.Ways*c.BlockBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("%w: %d sets not a power of two", ErrBadConfig, sets)
	}
	return nil
}

// line is one cache line's metadata.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a recency counter; larger = more recent.
	lru uint64
}

// Stats accumulates cache activity.
type Stats struct {
	Hits, Misses uint64
	Evictions    uint64
	Writebacks   uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint
	setMask  uint64
	lines    []line // sets × ways, row-major
	clock    uint64
	stats    Stats
}

// New builds a cache from a validated config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		setMask:  uint64(sets - 1),
		lines:    make([]line, sets*cfg.Ways),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without flushing contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AccessResult reports what one access did.
type AccessResult struct {
	// Hit is true when the block was present.
	Hit bool
	// Writeback is true when a dirty block was evicted.
	Writeback bool
	// EvictedAddr is the block address written back (valid only when
	// Writeback is true).
	EvictedAddr uint64
}

// Access looks up addr, filling on miss, and returns what happened.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.clock++
	set := int((addr >> c.setShift) & c.setMask)
	tag := addr >> c.setShift >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.cfg.Ways
	ways := c.lines[base : base+c.cfg.Ways]
	// Lookup.
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return AccessResult{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: invalid first, then LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if ways[victim].valid {
		c.stats.Evictions++
		if ways[victim].dirty {
			c.stats.Writebacks++
			res.Writeback = true
			res.EvictedAddr = c.reconstruct(ways[victim].tag, set)
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return res
}

// Contains reports whether addr's block is resident (no LRU update).
func (c *Cache) Contains(addr uint64) bool {
	set := int((addr >> c.setShift) & c.setMask)
	tag := addr >> c.setShift >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.cfg.Ways
	for _, l := range c.lines[base : base+c.cfg.Ways] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and returns the number of dirty lines
// discarded.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = line{}
	}
	return dirty
}

// reconstruct rebuilds a block address from tag and set index.
func (c *Cache) reconstruct(tag uint64, set int) uint64 {
	setBits := uint(bits.TrailingZeros(uint(c.sets)))
	return ((tag << setBits) | uint64(set)) << c.setShift
}
