package exp

import (
	"fmt"

	"ref/internal/cobb"
	"ref/internal/fair"
	"ref/internal/leontief"
)

// Paper running example (§3): u1 = x^0.6 y^0.4, u2 = x^0.2 y^0.8 sharing
// 24 GB/s of memory bandwidth and 12 MB of cache.
var (
	exampleU1   = cobb.MustNew(1, 0.6, 0.4)
	exampleU2   = cobb.MustNew(1, 0.2, 0.8)
	exampleCapX = 24.0
	exampleCapY = 12.0
)

// ExampleBox returns the §3 Edgeworth box.
func ExampleBox() (*fair.Box, error) {
	return fair.NewBox(exampleU1, exampleU2, exampleCapX, exampleCapY)
}

// BoxGridResult is the rendered region raster for Figures 1, 2, and 7.
type BoxGridResult struct {
	Box  *fair.Box
	Grid [][]fair.CellFlags
}

func runBoxGrid(cfg Config, render func(fair.CellFlags) byte, header string) (*BoxGridResult, error) {
	box, err := ExampleBox()
	if err != nil {
		return nil, err
	}
	grid, err := box.Grid(48, 24)
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, "x: 0..24 GB/s bandwidth (left→right), y: 0..12 MB cache (bottom→top), user 1 origin bottom-left")
	for j := len(grid) - 1; j >= 0; j-- {
		row := make([]byte, len(grid[j]))
		for i, c := range grid[j] {
			row[i] = render(c)
		}
		fmt.Fprintf(w, "%s\n", row)
	}
	return &BoxGridResult{Box: box, Grid: grid}, nil
}

// Fig1 renders the feasible-allocation box (every cell is feasible) and the
// worked complement example from the §3 text.
func Fig1(cfg Config) (*BoxGridResult, error) {
	res, err := runBoxGrid(cfg, func(fair.CellFlags) byte { return '.' },
		"Figure 1: Edgeworth box — every point is a feasible allocation")
	if err != nil {
		return nil, err
	}
	cx, cy := res.Box.Complement(6, 8)
	fmt.Fprintf(cfg.out(), "user 1 at (6 GB/s, 8 MB) leaves user 2 (%g GB/s, %g MB)\n", cx, cy)
	return res, nil
}

// Fig2 renders the envy-free regions of both users.
func Fig2(cfg Config) (*BoxGridResult, error) {
	return runBoxGrid(cfg, func(c fair.CellFlags) byte {
		switch {
		case c.EF1 && c.EF2:
			return 'B' // both envy-free
		case c.EF1:
			return '1'
		case c.EF2:
			return '2'
		default:
			return '.'
		}
	}, "Figure 2: envy-free regions (1 = EF for user 1, 2 = EF for user 2, B = both)")
}

// CurveResult holds sampled curves for Figures 3–6.
type CurveResult struct {
	// Series maps a label to (x, y) samples.
	Series map[string][]fair.Point
}

// Fig3 samples three Cobb-Douglas indifference curves for user 1 (I1 < I2
// < I3), showing smooth substitution.
func Fig3(cfg Config) (*CurveResult, error) {
	res := &CurveResult{Series: map[string][]fair.Point{}}
	w := cfg.out()
	fmt.Fprintln(w, "Figure 3: Cobb-Douglas indifference curves for u1 = x^0.6 y^0.4")
	for i, level := range []float64{4, 8, 12} {
		pts, err := exampleU1.IndifferenceCurve(level, 1, exampleCapX, 24)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("I%d", i+1)
		series := make([]fair.Point, len(pts))
		for k, p := range pts {
			series[k] = fair.Point{X: p.X, Y: p.Y}
		}
		res.Series[label] = series
		fmt.Fprintf(w, "%s (u=%g):", label, level)
		for _, p := range series {
			if p.Y <= exampleCapY*1.5 {
				fmt.Fprintf(w, " (%.2f,%.2f)", p.X, p.Y)
			}
		}
		fmt.Fprintln(w)
	}
	return res, nil
}

// Fig4 samples Leontief indifference curves (Equation 8's
// u1 = min{x, 2y}), showing the L-shaped kinks that admit no substitution.
func Fig4(cfg Config) (*CurveResult, error) {
	u := leontief.MustNew(1, 0.5) // min(x, 2y)
	res := &CurveResult{Series: map[string][]fair.Point{}}
	w := cfg.out()
	fmt.Fprintln(w, "Figure 4: Leontief indifference curves for u1 = min(x, 2y) — L-shaped, MRS 0 or ∞")
	for i, level := range []float64{4, 8, 12} {
		label := fmt.Sprintf("I%d", i+1)
		// An L-curve is fully described by its kink plus arms.
		kinkX, kinkY := level, level/2
		series := []fair.Point{
			{X: kinkX, Y: exampleCapY},
			{X: kinkX, Y: kinkY},
			{X: exampleCapX, Y: kinkY},
		}
		res.Series[label] = series
		fmt.Fprintf(w, "%s (u=%g): vertical arm x=%g, kink (%g,%g), horizontal arm y=%g\n",
			label, level, kinkX, kinkX, kinkY, kinkY)
		// Spot-check the wasted-allocation examples from §3.3.
		if i == 0 {
			fmt.Fprintf(w, "  u(4,2)=%g u(10,2)=%g u(4,10)=%g (extra resources wasted)\n",
				u.Eval([]float64{4, 2}), u.Eval([]float64{10, 2}), u.Eval([]float64{4, 10}))
		}
	}
	return res, nil
}

// Fig5 samples the contract curve (the PE set).
func Fig5(cfg Config) (*CurveResult, error) {
	box, err := ExampleBox()
	if err != nil {
		return nil, err
	}
	curve, err := box.ContractCurve(24)
	if err != nil {
		return nil, err
	}
	res := &CurveResult{Series: map[string][]fair.Point{"contract": curve}}
	w := cfg.out()
	fmt.Fprintln(w, "Figure 5: contract curve — allocations where both users' MRS agree (Equation 10)")
	for _, p := range curve {
		m := exampleU1.MRS(0, 1, []float64{p.X, p.Y})
		fmt.Fprintf(w, "x1=%6.2f y1=%6.2f MRS=%6.3f\n", p.X, p.Y, m)
	}
	return res, nil
}

// FairSetResult holds Figures 6 and 7's fair allocation sets.
type FairSetResult struct {
	// Points is the (sampled) fair set.
	Points []fair.Point
	// WithSI marks whether sharing incentives were imposed (Figure 7).
	WithSI bool
}

func runFairSet(cfg Config, withSI bool, header string) (*FairSetResult, error) {
	box, err := ExampleBox()
	if err != nil {
		return nil, err
	}
	pts, err := box.FairSet(400, withSI)
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintln(w, header)
	if len(pts) == 0 {
		fmt.Fprintln(w, "(empty)")
		return &FairSetResult{WithSI: withSI}, nil
	}
	fmt.Fprintf(w, "%d of 400 contract-curve samples qualify; span x1 ∈ [%.2f, %.2f]\n",
		len(pts), pts[0].X, pts[len(pts)-1].X)
	for i, p := range pts {
		if i%25 == 0 || i == len(pts)-1 {
			fmt.Fprintf(w, "x1=%6.2f y1=%6.2f\n", p.X, p.Y)
		}
	}
	return &FairSetResult{Points: pts, WithSI: withSI}, nil
}

// Fig6 computes the fair set: contract curve ∩ both EF regions.
func Fig6(cfg Config) (*FairSetResult, error) {
	return runFairSet(cfg, false, "Figure 6: fair allocations = contract curve ∩ envy-free regions")
}

// Fig7 further imposes sharing incentives.
func Fig7(cfg Config) (*FairSetResult, error) {
	return runFairSet(cfg, true, "Figure 7: sharing incentives shrink the fair set")
}

func init() {
	register("fig1", "Edgeworth box of feasible allocations (§3)", func(c Config) error {
		_, err := Fig1(c)
		return err
	})
	register("fig2", "Envy-free regions for both users (§3.2)", func(c Config) error {
		_, err := Fig2(c)
		return err
	})
	register("fig3", "Cobb-Douglas indifference curves (§3.3)", func(c Config) error {
		_, err := Fig3(c)
		return err
	})
	register("fig4", "Leontief indifference curves (§3.3)", func(c Config) error {
		_, err := Fig4(c)
		return err
	})
	register("fig5", "Contract curve of Pareto-efficient allocations (§3.3)", func(c Config) error {
		_, err := Fig5(c)
		return err
	})
	register("fig6", "Fair allocation set (§4)", func(c Config) error {
		_, err := Fig6(c)
		return err
	})
	register("fig7", "Fair set constrained by sharing incentives (§4)", func(c Config) error {
		_, err := Fig7(c)
		return err
	})
}
