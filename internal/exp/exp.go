// Package exp contains one driver per table and figure of the REF paper's
// evaluation. Each driver returns structured results (so tests and
// benchmarks can assert on them) and can render the same rows/series the
// paper reports to a writer. The refbench command exposes every driver by
// experiment ID.
package exp

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"ref/internal/obs"
	"ref/internal/par"
	"ref/internal/platform"
)

// ErrUnknownExperiment reports a bad experiment ID.
var ErrUnknownExperiment = errors.New("exp: unknown experiment")

// Config controls experiment fidelity, concurrency, and output.
type Config struct {
	// Accesses is the per-simulation memory-access budget (the synthetic
	// analogue of the paper's 100M-instruction ROI). Zero selects
	// DefaultAccesses.
	Accesses int
	// Parallelism bounds the worker pool used for the experiment's
	// independent units (grid points, mixes, trials, standalone runs).
	// Zero selects the default: $REF_PARALLELISM, else GOMAXPROCS.
	// Results are bit-identical at any setting.
	Parallelism int
	// Spec selects the platform resource model experiments profile and
	// allocate over. The zero value selects platform.Default() — the
	// paper's 2-resource (bandwidth, cache) machine — which reproduces
	// the historical output byte for byte.
	Spec platform.Spec
	// Out receives the rendered rows; nil discards them.
	Out io.Writer
}

// DefaultAccesses balances fidelity and runtime for the full 28×25 sweep.
const DefaultAccesses = 20000

func (c Config) accesses() int {
	if c.Accesses > 0 {
		return c.Accesses
	}
	return DefaultAccesses
}

// spec resolves the effective platform spec.
func (c Config) spec() platform.Spec {
	if len(c.Spec.Dims) == 0 {
		return platform.Default()
	}
	return c.Spec
}

func (c Config) out() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return io.Discard
}

// parallelism resolves the effective worker-pool width.
func (c Config) parallelism() int { return par.Resolve(c.Parallelism) }

// Experiment pairs an ID with its driver.
type Experiment struct {
	// ID is the index key, e.g. "fig13".
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment and renders its rows to cfg.Out.
	Run func(cfg Config) error
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(id, title string, run func(Config) error) {
	registry[id] = Experiment{ID: id, Title: title, Run: instrumentRun(id, run)}
}

// instrumentRun wraps a driver with per-experiment observability: wall
// time lands in the shared ref_exp_duration_seconds histogram and in a
// per-experiment gauge, and runs are counted by ID and outcome. With no
// registry installed the driver runs bare — no clock reads.
func instrumentRun(id string, run func(Config) error) func(Config) error {
	return func(cfg Config) error {
		r := obs.Installed()
		if r == nil {
			return run(cfg)
		}
		start := time.Now()
		err := run(cfg)
		d := time.Since(start).Seconds()
		r.Histogram("ref_exp_duration_seconds").Observe(d)
		r.Gauge(fmt.Sprintf("ref_exp_last_duration_seconds{exp=%q}", id)).Set(d)
		result := "ok"
		if err != nil {
			result = "error"
		}
		r.Counter(fmt.Sprintf("ref_exp_runs_total{exp=%q,result=%q}", id, result)).Inc()
		return err
	}
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	return e, nil
}
