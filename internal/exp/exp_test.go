package exp

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"ref/internal/mech"
	"ref/internal/trace"
)

// testCfg keeps experiment runtime affordable in tests. The FitAll sweep is
// memoized across tests in the same binary.
var testCfg = Config{Accesses: 6000}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8a", "fig8b", "fig8c", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "tab1", "tab2", "spl64",
		"ext-enforce", "ext-3r", "ext-online", "ext-corun", "ext-mc", "ext-interference",
		"nresource",
	}
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, err := Lookup("nonesuch"); !errors.Is(err, ErrUnknownExperiment) {
		t.Error("unknown experiment accepted")
	}
}

func TestAllSortedAndTitled(t *testing.T) {
	all := All()
	for i, e := range all {
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
		if i > 0 && all[i-1].ID >= e.ID {
			t.Error("All() not sorted")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.accesses() != DefaultAccesses {
		t.Errorf("accesses() = %d", c.accesses())
	}
	if c.out() == nil {
		t.Error("out() returned nil")
	}
}

func TestFig1ComplementExample(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig1(Config{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 24 || len(res.Grid[0]) != 48 {
		t.Fatalf("grid shape %dx%d", len(res.Grid), len(res.Grid[0]))
	}
	if !strings.Contains(buf.String(), "18 GB/s, 4 MB") {
		t.Errorf("complement example missing from output:\n%s", buf.String())
	}
}

func TestFig2RegionsNonTrivial(t *testing.T) {
	res, err := Fig2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var ef1, ef2, both int
	for _, row := range res.Grid {
		for _, c := range row {
			if c.EF1 {
				ef1++
			}
			if c.EF2 {
				ef2++
			}
			if c.EF1 && c.EF2 {
				both++
			}
		}
	}
	total := 24 * 48
	if ef1 == 0 || ef1 == total || ef2 == 0 || ef2 == total {
		t.Errorf("degenerate EF regions: ef1=%d ef2=%d of %d", ef1, ef2, total)
	}
	if both == 0 {
		t.Error("no mutually envy-free region")
	}
}

func TestFig3CurvesOrdered(t *testing.T) {
	res, err := Fig3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d curves", len(res.Series))
	}
	// Higher-utility curves lie strictly above lower ones at equal x.
	i1, i3 := res.Series["I1"], res.Series["I3"]
	for k := range i1 {
		if i3[k].Y <= i1[k].Y {
			t.Fatalf("I3 not above I1 at x=%v", i1[k].X)
		}
	}
}

func TestFig4LeontiefKinks(t *testing.T) {
	res, err := Fig4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each L-curve kink sits on the demand ray y = x/2.
	for label, pts := range res.Series {
		kink := pts[1]
		if math.Abs(kink.Y-kink.X/2) > 1e-9 {
			t.Errorf("%s kink (%v,%v) off the demand ray", label, kink.X, kink.Y)
		}
	}
}

func TestFig5ContractCurve(t *testing.T) {
	res, err := Fig5(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series["contract"]) != 24 {
		t.Fatalf("contract curve has %d points", len(res.Series["contract"]))
	}
}

func TestFig6Fig7Nesting(t *testing.T) {
	f6, err := Fig6(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Points) == 0 || len(f7.Points) == 0 {
		t.Fatal("empty fair sets")
	}
	if len(f7.Points) > len(f6.Points) {
		t.Error("SI constraint enlarged the fair set")
	}
	// The REF allocation (x1=18, y1=4) lies in the SI-constrained set.
	near := false
	for _, p := range f7.Points {
		if math.Hypot(p.X-18, p.Y-4) < 0.2 {
			near = true
		}
	}
	if !near {
		t.Error("REF allocation not in the Figure 7 fair set")
	}
}

func TestTab1MentionsLadder(t *testing.T) {
	var buf bytes.Buffer
	if err := Tab1(Config{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"128 KB", "2048 KB", "0.8 GB/s", "12.8 GB/s", "closed page"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestFig8aReportsAllBenchmarks(t *testing.T) {
	rows, err := Fig8a(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(trace.Names()) {
		t.Fatalf("%d rows, want %d", len(rows), len(trace.Names()))
	}
	var good int
	for _, r := range rows {
		if r.R2 < -0.1 || r.R2 > 1.0001 {
			t.Errorf("%s R2 = %v out of range", r.Name, r.R2)
		}
		if r.R2 >= 0.7 {
			good++
		}
	}
	// Paper: "most benchmarks are fitted with R-squared of 0.7-1.0".
	if good < len(rows)/2 {
		t.Errorf("only %d/%d benchmarks fit with R2 ≥ 0.7", good, len(rows))
	}
}

func TestFig8bTracksSimulation(t *testing.T) {
	series, err := Fig8b(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 25 {
			t.Errorf("%s has %d points", s.Name, len(s.Points))
		}
		// High-R² workloads: fitted values within 2× everywhere.
		for _, p := range s.Points {
			ratio := p.Fitted / p.Simulated
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("%s at (%v,%v): est/sim = %v", s.Name, p.BandwidthGBps, p.CacheMB, ratio)
			}
		}
	}
}

func TestFig8cRuns(t *testing.T) {
	series, err := Fig8c(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Name != "radiosity" {
		t.Fatalf("unexpected series: %+v", series)
	}
}

func TestFig9Classification(t *testing.T) {
	rows, err := Fig9(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for _, r := range rows {
		if math.Abs(r.AlphaMem+r.AlphaCache-1) > 1e-9 {
			t.Errorf("%s rescaled elasticities sum to %v", r.Name, r.AlphaMem+r.AlphaCache)
		}
		if r.Class != r.PaperClass {
			wrong++
			t.Logf("%s: fitted %v, paper %v", r.Name, r.Class, r.PaperClass)
		}
	}
	if wrong > 2 {
		t.Errorf("%d misclassifications at test budget", wrong)
	}
}

func TestFig10BothMechanismsFair(t *testing.T) {
	res, err := Fig10(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PEReport.All() {
		t.Errorf("REF allocation fails audit: %v", res.PEReport)
	}
	if !res.ESReport.SI.Satisfied || !res.ESReport.EF.Satisfied {
		t.Errorf("equal slowdown should satisfy SI and EF for histogram+dedup: %v", res.ESReport)
	}
}

func TestFig11EqualSlowdownViolates(t *testing.T) {
	res, err := Fig11(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PEReport.All() {
		t.Errorf("REF allocation fails audit: %v", res.PEReport)
	}
	if res.ESReport.SI.Satisfied && res.ESReport.EF.Satisfied {
		t.Errorf("equal slowdown unexpectedly fair for barnes+canneal: %v", res.ESReport)
	}
	// The paper's specific shape: canneal (agent 1) receives less than
	// half of both resources under equal slowdown, while REF gives it
	// more than half the bandwidth.
	if res.EqualSlowdown[1][0] >= PairCapacity[0]/2 || res.EqualSlowdown[1][1] >= PairCapacity[1]/2 {
		t.Errorf("canneal not squeezed under equal slowdown: %v", res.EqualSlowdown[1])
	}
	if res.Proportional[1][0] <= PairCapacity[0]/2 {
		t.Errorf("REF gives canneal %v GB/s, want > half", res.Proportional[1][0])
	}
}

func TestFig12EqualSlowdownViolates(t *testing.T) {
	res, err := Fig12(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PEReport.All() {
		t.Errorf("REF allocation fails audit: %v", res.PEReport)
	}
	if res.ESReport.SI.Satisfied && res.ESReport.EF.Satisfied {
		t.Errorf("equal slowdown unexpectedly fair for freqmine+linear_regression: %v", res.ESReport)
	}
	// REF divides the C-C pair nearly equally (§5.4: "proportional
	// elasticity divides resources almost equally").
	for r := 0; r < 2; r++ {
		share := res.Proportional[0][r] / PairCapacity[r]
		if share < 0.35 || share > 0.65 {
			t.Errorf("REF share of resource %d = %v, want near half", r, share)
		}
	}
}

func TestTab2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Tab2(Config{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"WD1", "WD10"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("Table 2 output missing %s", id)
		}
	}
}

// The paper's two headline throughput claims, asserted over every mix:
// (1) fairness penalty below 10%; (2) the two fair mechanisms agree.
func TestFig13Fig14PaperShape(t *testing.T) {
	for _, fn := range []func(Config) ([]ThroughputRow, error){Fig13, Fig14} {
		rows, err := fn(testCfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("%d rows, want 5", len(rows))
		}
		for _, r := range rows {
			if p := r.FairnessPenalty(); p > 0.10 {
				t.Errorf("%s: fairness penalty %.1f%% exceeds 10%%", r.Mix.ID, 100*p)
			}
			fairW := r.Throughput[mech.MaxWelfareFair{}.Name()]
			refW := r.Throughput[mech.ProportionalElasticity{}.Name()]
			if math.Abs(fairW-refW) > 0.05*refW {
				t.Errorf("%s: MaxWelfareFair %.3f differs from REF %.3f", r.Mix.ID, fairW, refW)
			}
			es := r.Throughput[mech.EqualSlowdown{}.Name()]
			unfair := r.Throughput[mech.MaxWelfareUnfair{}.Name()]
			if es > unfair*1.02 {
				t.Errorf("%s: equal slowdown %.3f above unfair max welfare %.3f", r.Mix.ID, es, unfair)
			}
		}
	}
}

// Figure 14's extra observation: at 8 cores equal slowdown underperforms
// proportional elasticity on (at least most of) the mixes.
func TestFig14EqualSlowdownLags(t *testing.T) {
	rows, err := Fig14(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	lags := 0
	for _, r := range rows {
		if r.Throughput[mech.EqualSlowdown{}.Name()] <= r.Throughput[mech.ProportionalElasticity{}.Name()]+1e-9 {
			lags++
		}
	}
	if lags < 4 {
		t.Errorf("equal slowdown lags REF on only %d/5 8-core mixes", lags)
	}
}

func TestSPL64Shrinks(t *testing.T) {
	res, err := SPL64(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) != 6 || pts[0].N != 2 || pts[len(pts)-1].N != 64 {
		t.Fatalf("unexpected sweep points: %+v", pts)
	}
	if pts[len(pts)-1].MaxDeviation > 0.02 {
		t.Errorf("64-agent deviation %v, want ≈0 (SPL)", pts[len(pts)-1].MaxDeviation)
	}
	if pts[0].MaxDeviation < 5*pts[len(pts)-1].MaxDeviation {
		t.Errorf("deviation does not shrink: N=2 %v vs N=64 %v", pts[0].MaxDeviation, pts[len(pts)-1].MaxDeviation)
	}
}

func TestSystemCapacity(t *testing.T) {
	four := SystemCapacity(4)
	eight := SystemCapacity(8)
	if four[0] != 12.8 || four[1] != 2.0 {
		t.Errorf("4-core capacity = %v", four)
	}
	if eight[0] != 25.6 || eight[1] != 4.0 {
		t.Errorf("8-core capacity = %v", eight)
	}
}

func TestRunPairUnknownBenchmark(t *testing.T) {
	if _, err := RunPair(testCfg, "nonesuch", "dedup"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
