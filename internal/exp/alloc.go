package exp

import (
	"fmt"

	"ref/internal/cobb"
	"ref/internal/core"
	"ref/internal/fair"
	"ref/internal/mech"
	"ref/internal/opt"
	"ref/internal/workloads"
)

// PairCapacity is the two-agent system the Figure 10–12 comparisons run
// on: the full Table 1 machine (12.8 GB/s, 2 MB LLC).
var PairCapacity = []float64{12.8, 2.0}

// PairResult compares equal slowdown against proportional elasticity for
// one benchmark pair (Figures 10, 11, 12).
type PairResult struct {
	// Names are the two benchmarks.
	Names [2]string
	// EqualSlowdown and Proportional hold each mechanism's allocation as
	// a fraction of total capacity, indexed [agent][resource].
	EqualSlowdown, Proportional opt.Alloc
	// ESReport and PEReport audit the two allocations.
	ESReport, PEReport fair.Report
}

// RunPair allocates the two-benchmark system with both mechanisms and
// audits SI/EF/PE for each.
func RunPair(cfg Config, a, b string) (*PairResult, error) {
	fitted, err := workloads.FitAllParallel(cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	fa, ok := fitted[a]
	if !ok {
		return nil, fmt.Errorf("exp: unknown benchmark %q", a)
	}
	fb, ok := fitted[b]
	if !ok {
		return nil, fmt.Errorf("exp: unknown benchmark %q", b)
	}
	agents := []core.Agent{
		{Name: a, Utility: fa.Fit.Utility},
		{Name: b, Utility: fb.Fit.Utility},
	}
	utils := []cobb.Utility{fa.Fit.Utility, fb.Fit.Utility}

	es, err := mech.EqualSlowdown{}.Allocate(agents, PairCapacity)
	if err != nil {
		return nil, fmt.Errorf("exp: equal slowdown: %w", err)
	}
	pe, err := mech.ProportionalElasticity{}.Allocate(agents, PairCapacity)
	if err != nil {
		return nil, fmt.Errorf("exp: proportional elasticity: %w", err)
	}
	// The iterative equal-slowdown allocation carries solver noise; audit
	// with a loosened tolerance so only real violations surface.
	tol := fair.SolverTolerance()
	esRep, err := fair.Audit(utils, PairCapacity, es, tol)
	if err != nil {
		return nil, err
	}
	peRep, err := fair.Audit(utils, PairCapacity, pe, tol)
	if err != nil {
		return nil, err
	}
	res := &PairResult{
		Names:         [2]string{a, b},
		EqualSlowdown: es,
		Proportional:  pe,
		ESReport:      esRep,
		PEReport:      peRep,
	}
	w := cfg.out()
	classA, classB := fa.Workload.Class, fb.Workload.Class
	fmt.Fprintf(w, "%s (%s) + %s (%s) sharing %g GB/s, %g MB\n", a, classA, b, classB, PairCapacity[0], PairCapacity[1])
	printAlloc := func(label string, x opt.Alloc, rep fair.Report) {
		fmt.Fprintf(w, "  %-24s", label)
		for i, name := range res.Names {
			fmt.Fprintf(w, "  %s: %4.1f%% bw, %4.1f%% cache", name,
				100*x[i][0]/PairCapacity[0], 100*x[i][1]/PairCapacity[1])
		}
		fmt.Fprintf(w, "  [%s]\n", rep)
	}
	printAlloc("equal slowdown", es, esRep)
	printAlloc("proportional elasticity", pe, peRep)
	return res, nil
}

// Fig10 reproduces the histogram (C) + dedup (M) example, where equal
// slowdown happens to satisfy SI, EF, and PE.
func Fig10(cfg Config) (*PairResult, error) {
	fmt.Fprintln(cfg.out(), "Figure 10: C-M pair where equal slowdown can satisfy the fairness properties")
	return RunPair(cfg, "histogram", "dedup")
}

// Fig11 reproduces barnes (C) + canneal (M), where equal slowdown violates
// SI and EF for canneal.
func Fig11(cfg Config) (*PairResult, error) {
	fmt.Fprintln(cfg.out(), "Figure 11: C-M pair where equal slowdown violates SI and EF")
	return RunPair(cfg, "barnes", "canneal")
}

// Fig12 reproduces freqmine (C) + linear_regression (C), where equal
// slowdown violates SI and EF for freqmine.
func Fig12(cfg Config) (*PairResult, error) {
	fmt.Fprintln(cfg.out(), "Figure 12: C-C pair where equal slowdown violates SI and EF")
	return RunPair(cfg, "freqmine", "linear_regression")
}

func init() {
	register("fig10", "Equal slowdown vs REF: histogram+dedup (Figure 10)", func(c Config) error {
		_, err := Fig10(c)
		return err
	})
	register("fig11", "Equal slowdown vs REF: barnes+canneal (Figure 11)", func(c Config) error {
		_, err := Fig11(c)
		return err
	})
	register("fig12", "Equal slowdown vs REF: freqmine+linear_regression (Figure 12)", func(c Config) error {
		_, err := Fig12(c)
		return err
	})
}
