package exp

import (
	"fmt"

	"ref/internal/cache"
	"ref/internal/par"
	"ref/internal/sim"
	"ref/internal/trace"
)

// InterferenceRow compares one agent's IPC under unmanaged sharing vs an
// enforced equal allocation.
type InterferenceRow struct {
	Name string
	// UnmanagedIPC is the agent's IPC on a globally shared LLC and FCFS
	// memory controller.
	UnmanagedIPC float64
	// ManagedIPC is the agent's IPC under way partitioning + bandwidth
	// slices at the equal split.
	ManagedIPC float64
}

// ExtInterference demonstrates the premise the whole paper rests on (§1:
// "mechanisms for fair resource allocation … determine whether users have
// incentives to participate"): with no allocation at all, a streaming
// aggressor evicts a cache-friendly neighbor's working set from the shared
// LLC; the enforced equal split restores it. The victim's slowdown under
// unmanaged sharing is the quantity the mechanism exists to eliminate.
func ExtInterference(cfg Config) ([]InterferenceRow, error) {
	victim, err := trace.Lookup("raytrace") // cache-friendly (class C)
	if err != nil {
		return nil, err
	}
	aggressor, err := trace.Lookup("streamcluster") // streaming (class M)
	if err != nil {
		return nil, err
	}
	ws := []trace.Config{victim.Config, aggressor.Config}
	llc := cache.Config{SizeBytes: 2 << 20, Ways: 8, BlockBytes: 64, HitLatency: 20}
	const bw = 12.8
	// The unmanaged and managed scenarios are independent simulations; run
	// them concurrently. (The unmanaged co-run itself is inherently serial —
	// its agents share one LLC and controller.)
	var unmanaged, managed *sim.CoRunResult
	err = par.ForEach(2, cfg.Parallelism, func(i int) error {
		var err error
		if i == 0 {
			unmanaged, err = sim.UnmanagedCoRun(ws, llc, bw, cfg.accesses())
		} else {
			managed, err = sim.CoRunParallel(ws, llc, bw,
				[][2]float64{{bw / 2, 1 << 20}, {bw / 2, 1 << 20}}, cfg.accesses(), cfg.Parallelism)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	names := []string{victim.Config.Name, aggressor.Config.Name}
	rows := make([]InterferenceRow, len(names))
	w := cfg.out()
	fmt.Fprintln(w, "Interference (§1 premise): unmanaged shared LLC vs enforced equal split")
	for i, n := range names {
		rows[i] = InterferenceRow{
			Name:         n,
			UnmanagedIPC: unmanaged.Agents[i].IPC(),
			ManagedIPC:   managed.Agents[i].IPC(),
		}
		fmt.Fprintf(w, "  %-14s unmanaged IPC=%.3f  equal-split IPC=%.3f  (×%.2f)\n",
			n, rows[i].UnmanagedIPC, rows[i].ManagedIPC, rows[i].ManagedIPC/rows[i].UnmanagedIPC)
	}
	return rows, nil
}

func init() {
	register("ext-interference", "Unmanaged sharing vs enforced split: the paper's premise (§1)", func(c Config) error {
		_, err := ExtInterference(c)
		return err
	})
}
