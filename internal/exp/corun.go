package exp

import (
	"fmt"

	"ref/internal/cache"
	"ref/internal/mech"
	"ref/internal/par"
	"ref/internal/sim"
	"ref/internal/trace"
	"ref/internal/workloads"
)

// CoRunRow compares utility-predicted and simulator-measured normalized
// performance for one agent under an enforced REF allocation.
type CoRunRow struct {
	Name string
	// PredictedU is u_i(x_i)/u_i(C) from the fitted utility.
	PredictedU float64
	// SimulatedU is IPC(shared)/IPC(alone) from enforcing the allocation
	// with way partitioning and bandwidth slicing.
	SimulatedU float64
}

// CoRunResult is the ext-corun experiment outcome.
type CoRunResult struct {
	Mix  workloads.Mix
	Rows []CoRunRow
	// PredictedThroughput and SimulatedThroughput are the Σ U_i under
	// each measurement.
	PredictedThroughput, SimulatedThroughput float64
}

// ExtCoRun closes the loop between the mechanism and the metal: it computes
// the REF allocation for WD2 from fitted utilities, *enforces* it in the
// platform simulator (LLC way partitioning + bandwidth slices, §4.4), and
// compares the utility-predicted normalized performance against the
// simulator's IPC ratios. Equation 17's premise — that fitted utilities
// stand in for IPC — becomes a measured error, not an assumption.
func ExtCoRun(cfg Config) (*CoRunResult, error) {
	fitted, err := workloads.FitAllParallel(cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	var mix workloads.Mix
	for _, m := range workloads.Table2() {
		if m.ID == "WD2" {
			mix = m
		}
	}
	agents, err := mix.Agents(fitted)
	if err != nil {
		return nil, err
	}
	capacity := SystemCapacity(len(agents)) // (12.8 GB/s, 2 MB)
	x, err := mech.ProportionalElasticity{}.Allocate(agents, capacity)
	if err != nil {
		return nil, err
	}
	predicted, err := mech.NormalizedUtilities(agents, capacity, x)
	if err != nil {
		return nil, err
	}

	// Enforce: bandwidth share in GB/s, cache share in bytes. The fitted
	// utilities are only valid over the profiled range (≥ 0.8 GB/s), and
	// Cobb-Douglas with a near-zero elasticity extrapolates to "no harm"
	// at allocations where the machine would actually starve — so the
	// enforcement layer imposes a bandwidth floor and takes the deficit
	// pro rata from the agents above it.
	const bwFloor = 0.2
	shares := make([]float64, len(agents))
	var deficit, above float64
	for i := range agents {
		shares[i] = x[i][0]
		if shares[i] < bwFloor {
			deficit += bwFloor - shares[i]
			shares[i] = bwFloor
		} else {
			above += shares[i]
		}
	}
	if above > 0 {
		for i := range shares {
			if shares[i] > bwFloor {
				shares[i] -= deficit * shares[i] / above
			}
		}
	}
	wcfgs := make([]trace.Config, len(agents))
	alloc := make([][2]float64, len(agents))
	for i, b := range mix.Benchmarks {
		wcfgs[i] = fitted[b].Workload.Config
		alloc[i] = [2]float64{shares[i], x[i][1] * (1 << 20)}
	}
	totalLLC := cache.Config{SizeBytes: int(capacity[1] * (1 << 20)), Ways: 8, BlockBytes: 64, HitLatency: 20}
	shared, err := sim.CoRunParallel(wcfgs, totalLLC, capacity[0], alloc, cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}

	// The standalone reference runs are independent of each other and of
	// the shared result; fan them out before assembling rows in order.
	aloneIPC := make([]float64, len(mix.Benchmarks))
	err = par.ForEach(len(mix.Benchmarks), cfg.Parallelism, func(i int) error {
		alone, err := sim.Run(wcfgs[i], sim.DefaultPlatform(totalLLC.SizeBytes, capacity[0]), cfg.accesses())
		if err != nil {
			return err
		}
		aloneIPC[i] = alone.IPC()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &CoRunResult{Mix: mix}
	w := cfg.out()
	fmt.Fprintln(w, "Enforced co-run (WD2): utility-predicted vs simulator-measured normalized performance")
	for i, b := range mix.Benchmarks {
		simU := 0.0
		if aloneIPC[i] > 0 {
			simU = shared.Agents[i].IPC() / aloneIPC[i]
		}
		row := CoRunRow{Name: b, PredictedU: predicted[i], SimulatedU: simU}
		res.Rows = append(res.Rows, row)
		res.PredictedThroughput += row.PredictedU
		res.SimulatedThroughput += row.SimulatedU
		fmt.Fprintf(w, "  %-14s predicted U=%.3f  simulated U=%.3f\n", b, row.PredictedU, row.SimulatedU)
	}
	fmt.Fprintf(w, "weighted throughput: predicted %.3f, simulated %.3f\n",
		res.PredictedThroughput, res.SimulatedThroughput)
	return res, nil
}

func init() {
	register("ext-corun", "Enforced co-run: predicted vs simulated throughput (Eq. 17 premise)", func(c Config) error {
		_, err := ExtCoRun(c)
		return err
	})
}
