package exp

import (
	"fmt"
	"math"
	"math/rand"

	"ref/internal/cobb"
	"ref/internal/core"
	"ref/internal/dram"
	"ref/internal/fair"
	"ref/internal/fit"
	"ref/internal/sched"
	"ref/internal/sim"
	"ref/internal/trace"
	"ref/internal/workloads"
)

// The ext* experiments go beyond the paper's figures to exercise the parts
// of the paper that are described in prose: §4.4's enforcement and on-line
// profiling, and §1's future-work extension to more resources.

// EnforceRow compares unmanaged FCFS against WFQ arbitration for one agent.
type EnforceRow struct {
	Agent       string
	FCFSLat     float64
	WFQLat      float64
	WFQShare    float64
	TargetShare float64
}

// ExtEnforce demonstrates §4.4's claim that computed shares can be enforced
// with weighted fair queuing: a light agent and an overloading heavy agent
// share a 3.2 GB/s memory system; without WFQ the light agent's latency
// balloons, with WFQ it is isolated at its REF share.
func ExtEnforce(cfg Config) ([]EnforceRow, error) {
	rates := []float64{4, 40} // offered bursts per kilocycle
	weights := []float64{0.3, 0.7}
	const horizon = 400000
	mcCfg := dram.DefaultConfig(3.2)
	fcfs, err := sched.RunSharedBusFCFS(mcCfg, rates, horizon, 7)
	if err != nil {
		return nil, err
	}
	wfq, err := sched.RunSharedBusWFQ(mcCfg, rates, weights, horizon, 7)
	if err != nil {
		return nil, err
	}
	names := []string{"light", "heavy"}
	rows := make([]EnforceRow, len(names))
	w := cfg.out()
	fmt.Fprintln(w, "Enforcement (§4.4): FCFS vs WFQ on an overloaded 3.2 GB/s memory system")
	for i, n := range names {
		rows[i] = EnforceRow{
			Agent:       n,
			FCFSLat:     fcfs.AvgLatency[i],
			WFQLat:      wfq.AvgLatency[i],
			WFQShare:    wfq.Share(i),
			TargetShare: weights[i],
		}
		fmt.Fprintf(w, "%-6s offered=%4.0f/kcycle  FCFS latency=%8.0f  WFQ latency=%8.0f  WFQ share=%.2f (target %.2f)\n",
			n, rates[i], rows[i].FCFSLat, rows[i].WFQLat, rows[i].WFQShare, rows[i].TargetShare)
	}
	return rows, nil
}

// Ext3RResult is a three-resource allocation with its audit.
type Ext3RResult struct {
	Agents   []core.Agent
	Capacity []float64
	X        [][]float64
	Report   fair.Report
}

// Ext3R runs REF over three resources (cores, cache, bandwidth) — the
// future-work extension §1 promises ("the mechanism can support additional
// resources, such as the number of processor cores").
func Ext3R(cfg Config) (*Ext3RResult, error) {
	agents := []core.Agent{
		{Name: "build", Utility: cobb.MustNew(1, 0.70, 0.10, 0.20)},
		{Name: "kvstore", Utility: cobb.MustNew(1, 0.15, 0.65, 0.20)},
		{Name: "stream", Utility: cobb.MustNew(1, 0.20, 0.10, 0.70)},
		{Name: "web", Utility: cobb.MustNew(1, 0.34, 0.33, 0.33)},
	}
	capacity := []float64{16, 12, 24}
	alloc, err := core.Allocate(agents, capacity)
	if err != nil {
		return nil, err
	}
	utils := make([]cobb.Utility, len(agents))
	for i, a := range agents {
		utils[i] = a.Utility
	}
	rep, err := fair.Audit(utils, capacity, alloc.X, fair.DefaultTolerance())
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintln(w, "Three-resource REF (cores, cache MB, bandwidth GB/s):")
	x := make([][]float64, len(agents))
	for i, a := range agents {
		x[i] = alloc.X[i]
		fmt.Fprintf(w, "  %-8s %5.2f cores %5.2f MB %5.2f GB/s\n", a.Name, x[i][0], x[i][1], x[i][2])
	}
	fmt.Fprintf(w, "properties: %s\n", rep)
	return &Ext3RResult{Agents: agents, Capacity: capacity, X: x, Report: rep}, nil
}

// OnlinePoint is one epoch of the on-line profiling loop.
type OnlinePoint struct {
	Epoch int
	// AlphaErr is ‖α̂_est − α̂_true‖∞ over rescaled elasticities.
	AlphaErr float64
	// R2 is the fitter's goodness of fit at this epoch.
	R2 float64
}

// ExtOnline reproduces §4.4's on-line profiling narrative: a naive agent
// starts by reporting u = x^0.5·y^0.5; the system allocates for the
// reported utility, the agent observes its (simulated) performance at the
// allocation plus profiling jitter, refits, and re-reports. The estimate
// converges to the benchmark's true fitted elasticities within a few tens
// of epochs.
func ExtOnline(cfg Config) ([]OnlinePoint, error) {
	fitted, err := workloads.FitAllParallel(cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	truth := fitted["streamcluster"].Fit.Utility.Rescaled()
	wcfg := fitted["streamcluster"].Workload.Config

	// The partner agent is static; capacities from the pair system.
	partner := fitted["histogram"].Fit.Utility
	capacity := PairCapacity
	fitter, err := fit.NewOnlineFitter(2, 2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(44))
	w := cfg.out()
	fmt.Fprintln(w, "On-line profiling (§4.4): naive x^0.5·y^0.5 prior refined from observed allocations")
	var pts []OnlinePoint
	const epochs = 40
	for e := 0; e < epochs; e++ {
		agents := []core.Agent{
			{Name: "learner", Utility: fitter.Utility()},
			{Name: "partner", Utility: partner},
		}
		alloc, err := core.Allocate(agents, capacity)
		if err != nil {
			return nil, err
		}
		// Half the epochs observe performance near the granted allocation
		// (exploitation); half sample the Table 1 operating range
		// log-uniformly (exploration). Without the exploration half the
		// regression only sees the neighborhood of one operating point
		// and cannot recover the machine-wide elasticities — the varied
		// allocations §4.4 says "accumulate over time".
		var obs []float64
		if e%2 == 0 {
			obs = []float64{
				0.8 * math.Pow(16, rng.Float64()),
				0.125 * math.Pow(16, rng.Float64()),
			}
		} else {
			obs = []float64{
				math.Min(12.8, math.Max(0.8, alloc.X[0][0]*math.Exp(0.4*rng.NormFloat64()))),
				alloc.X[0][1] * math.Exp(0.3*rng.NormFloat64()),
			}
		}
		perf, err := simulatedPerf(wcfg, obs, cfg.accesses())
		if err != nil {
			return nil, err
		}
		if err := fitter.Observe(obs, perf); err != nil {
			return nil, err
		}
		est := fitter.Utility().Rescaled()
		errNow := math.Max(math.Abs(est.Alpha[0]-truth.Alpha[0]), math.Abs(est.Alpha[1]-truth.Alpha[1]))
		pts = append(pts, OnlinePoint{Epoch: e, AlphaErr: errNow, R2: fitter.R2()})
		if e%5 == 0 || e == epochs-1 {
			fmt.Fprintf(w, "epoch %2d: est α=(%.3f, %.3f) true=(%.3f, %.3f) err=%.3f\n",
				e, est.Alpha[0], est.Alpha[1], truth.Alpha[0], truth.Alpha[1], errNow)
		}
	}
	return pts, nil
}

// simulatedPerf runs the learner's workload at an arbitrary (bandwidth
// GB/s, cache MB) operating point and returns its IPC. Cache sizes are
// snapped to 128 KB granularity so the cache model's power-of-two set
// indexing always has a valid geometry.
func simulatedPerf(wcfg trace.Config, alloc []float64, accesses int) (float64, error) {
	if accesses < 1000 {
		accesses = 1000
	}
	bw := math.Max(alloc[0], 0.1)
	steps := int(alloc[1]*(1<<20)/(128<<10) + 0.5)
	if steps < 1 {
		steps = 1
	}
	if steps > 16 { // clamp at Table 1's 2 MB top end
		steps = 16
	}
	cacheBytes := steps * (128 << 10)
	res, err := sim.Run(wcfg, sim.DefaultPlatform(cacheBytes, bw), accesses)
	if err != nil {
		return 0, err
	}
	return res.IPC(), nil
}

func init() {
	register("ext-enforce", "Share enforcement: FCFS vs WFQ on a shared bus (§4.4)", func(c Config) error {
		_, err := ExtEnforce(c)
		return err
	})
	register("ext-3r", "Three-resource REF: cores + cache + bandwidth (§1 future work)", func(c Config) error {
		_, err := Ext3R(c)
		return err
	})
	register("ext-online", "On-line profiling: naive prior converges to true elasticities (§4.4)", func(c Config) error {
		_, err := ExtOnline(c)
		return err
	})
}
