package exp

import (
	"math"
	"testing"
)

func TestExtEnforceWFQProtects(t *testing.T) {
	rows, err := ExtEnforce(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	light := rows[0]
	if light.WFQLat > light.FCFSLat/5 {
		t.Errorf("WFQ latency %v not far below FCFS %v for the light agent", light.WFQLat, light.FCFSLat)
	}
	heavy := rows[1]
	if heavy.WFQShare < 0.6 {
		t.Errorf("heavy agent share %v — WFQ should stay work-conserving", heavy.WFQShare)
	}
}

func TestExt3RFair(t *testing.T) {
	res, err := Ext3R(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.All() {
		t.Errorf("three-resource REF fails audit: %v", res.Report)
	}
	if len(res.X) != 4 || len(res.X[0]) != 3 {
		t.Fatalf("allocation shape %dx%d", len(res.X), len(res.X[0]))
	}
	// Capacity exhaustion per resource.
	for r := 0; r < 3; r++ {
		var tot float64
		for i := range res.X {
			tot += res.X[i][r]
		}
		if math.Abs(tot-res.Capacity[r]) > 1e-9 {
			t.Errorf("resource %d total %v, capacity %v", r, tot, res.Capacity[r])
		}
	}
	// Each specialist gets the plurality of its preferred resource.
	if res.X[0][0] <= res.X[1][0] || res.X[0][0] <= res.X[2][0] {
		t.Error("core-hungry agent did not get the most cores")
	}
	if res.X[1][1] <= res.X[0][1] || res.X[1][1] <= res.X[2][1] {
		t.Error("cache-hungry agent did not get the most cache")
	}
	if res.X[2][2] <= res.X[0][2] || res.X[2][2] <= res.X[1][2] {
		t.Error("bandwidth-hungry agent did not get the most bandwidth")
	}
}

func TestExtOnlineConverges(t *testing.T) {
	pts, err := ExtOnline(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 20 {
		t.Fatalf("only %d epochs", len(pts))
	}
	// The naive prior (0.5, 0.5) starts ~0.4 from streamcluster's truth;
	// the final estimate must close most of that gap and classify M.
	final := pts[len(pts)-1]
	if final.AlphaErr > 0.1 {
		t.Errorf("final elasticity error %v, want < 0.1", final.AlphaErr)
	}
	first := pts[0]
	if final.AlphaErr > first.AlphaErr/2 {
		t.Errorf("error did not halve: %v -> %v", first.AlphaErr, final.AlphaErr)
	}
}

func TestExtCoRunPredictionQuality(t *testing.T) {
	res, err := ExtCoRun(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SimulatedU <= 0 || r.SimulatedU > 1.2 {
			t.Errorf("%s simulated U = %v out of range", r.Name, r.SimulatedU)
		}
		if math.Abs(r.PredictedU-r.SimulatedU) > 0.3 {
			t.Errorf("%s: predicted %v vs simulated %v — utility model too far off",
				r.Name, r.PredictedU, r.SimulatedU)
		}
	}
	// Aggregate throughput predictions within 30%.
	if res.SimulatedThroughput < res.PredictedThroughput*0.7 ||
		res.SimulatedThroughput > res.PredictedThroughput*1.3 {
		t.Errorf("throughput: predicted %v vs simulated %v",
			res.PredictedThroughput, res.SimulatedThroughput)
	}
}

func TestExtMCPenaltyBounded(t *testing.T) {
	res, err := ExtMC(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Economies != 100 || len(res.Penalties) != 100 {
		t.Fatalf("economies = %d", res.Economies)
	}
	// The paper's bound, in distribution.
	if res.Max > 0.12 {
		t.Errorf("max fairness penalty %.1f%% exceeds the paper's ~10%% bound", 100*res.Max)
	}
	if res.Mean > 0.05 {
		t.Errorf("mean fairness penalty %.1f%% suspiciously high", 100*res.Mean)
	}
	if res.P95 > res.Max+1e-12 || res.Mean > res.P95+1e-12 {
		t.Error("distribution summaries inconsistent")
	}
	// Equal slowdown should lose to REF in a majority of economies.
	if res.EqualSlowdownWorse < 50 {
		t.Errorf("equal slowdown beat REF in %d/100 economies", 100-res.EqualSlowdownWorse)
	}
}

func TestExtInterferenceVictimRecovers(t *testing.T) {
	rows, err := ExtInterference(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	victim := rows[0]
	if victim.ManagedIPC <= victim.UnmanagedIPC {
		t.Errorf("equal split did not recover the victim: %v vs %v",
			victim.ManagedIPC, victim.UnmanagedIPC)
	}
}
