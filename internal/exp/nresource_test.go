package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ref/internal/platform"
)

// The N-resource pipeline must close end to end: sim-backed 3-dimensional
// fits, an Eq. 13 allocation that exhausts each capacity, a passing
// SI/EF/PE audit, and positive co-run performance — all deterministic
// across worker-pool widths.
func TestNResourceEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg
	cfg.Parallelism = 1
	cfg.Out = &buf
	res, err := NResource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Spec.NumResources(); got != 3 {
		t.Fatalf("default spec has %d resources, want 3", got)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (WD2)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.R2 < 0.5 {
			t.Errorf("%s: R² = %.3f, implausibly low", row.Name, row.R2)
		}
		if row.IPC <= 0 {
			t.Errorf("%s: co-run IPC %v", row.Name, row.IPC)
		}
		if len(row.Alloc) != 3 || len(row.Alpha) != 3 {
			t.Errorf("%s: alloc/alpha not 3-dimensional", row.Name)
		}
	}
	// Eq. 13 exhausts every resource: per-dim allocations sum to capacity.
	for r := 0; r < 3; r++ {
		var sum float64
		for _, row := range res.Rows {
			sum += row.Alloc[r]
		}
		if d := sum/res.Capacity[r] - 1; d > 1e-6 || d < -1e-6 {
			t.Errorf("dim %d: allocations sum to %v, capacity %v", r, sum, res.Capacity[r])
		}
	}
	if !res.Report.All() {
		t.Fatalf("REF audit failed: %s", res.Report)
	}
	if res.Throughput <= 0 {
		t.Fatalf("weighted throughput %v", res.Throughput)
	}
	// Deterministic across widths, memoized or not.
	for _, width := range []int{2, 8} {
		var buf2 bytes.Buffer
		cfg2 := testCfg
		cfg2.Parallelism = width
		cfg2.Out = &buf2
		again, err := NResource(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		// Spec carries func fields (never DeepEqual); compare the data.
		if !reflect.DeepEqual(res.Rows, again.Rows) ||
			!reflect.DeepEqual(res.Capacity, again.Capacity) ||
			res.Throughput != again.Throughput ||
			!reflect.DeepEqual(res.Report, again.Report) {
			t.Fatalf("width %d result diverged from serial", width)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("width %d rendering diverged from serial", width)
		}
	}
}

// TestGoldenNResource locks the rendered nresource output against the
// committed golden, same convention as fig13/fig14: regenerate with
//
//	go test ./internal/exp -run TestGoldenNResource -update
func TestGoldenNResource(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg
	cfg.Out = &buf
	if _, err := NResource(cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "nresource.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("nresource output diverged from %s\n--- got ---\n%s--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// Fig8b must locate the bandwidth and cache axes by dim name: with a spec
// whose dims are declared cache-first, every point's coordinates must still
// land on the right axis. (The historical code read Alloc[0] as bandwidth
// positionally, which this spec would silently transpose.)
func TestFig8bPermutedSpec(t *testing.T) {
	cacheDim := platform.CacheDim()
	cacheDim.Levels = []float64{0.5, 1, 2}
	bwDim := platform.BandwidthDim()
	bwDim.Levels = []float64{3.2, 6.4, 12.8}
	spec := platform.Spec{Name: "permuted", Dims: []platform.ResourceDim{cacheDim, bwDim}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := testCfg
	cfg.Spec = spec
	series, err := Fig8b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bwLevels := map[float64]bool{3.2: true, 6.4: true, 12.8: true}
	cacheLevels := map[float64]bool{0.5: true, 1: true, 2: true}
	for _, s := range series {
		if len(s.Points) != 9 {
			t.Fatalf("%s: %d points, want 9", s.Name, len(s.Points))
		}
		seen := map[[2]float64]bool{}
		for _, pt := range s.Points {
			if !bwLevels[pt.BandwidthGBps] {
				t.Fatalf("%s: BandwidthGBps = %v is not a bandwidth level (axes transposed?)", s.Name, pt.BandwidthGBps)
			}
			if !cacheLevels[pt.CacheMB] {
				t.Fatalf("%s: CacheMB = %v is not a cache level (axes transposed?)", s.Name, pt.CacheMB)
			}
			seen[[2]float64{pt.BandwidthGBps, pt.CacheMB}] = true
		}
		if len(seen) != 9 {
			t.Fatalf("%s: %d distinct (bw, cache) pairs, want the full 3×3 grid", s.Name, len(seen))
		}
	}
}
