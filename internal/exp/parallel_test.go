package exp

import (
	"bytes"
	"testing"
)

// TestExtMCDeterministicAcrossParallelism asserts the Monte Carlo study is
// bit-identical between serial and parallel execution and across two
// parallel runs: every economy derives its own rand source, so scheduling
// cannot leak into the sample.
func TestExtMCDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) (*MCResult, string) {
		var buf bytes.Buffer
		res, err := ExtMC(Config{Accesses: 6000, Parallelism: parallelism, Out: &buf})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res, buf.String()
	}
	serial, serialOut := run(1)
	par8a, par8aOut := run(8)
	par8b, par8bOut := run(8)
	if len(serial.Penalties) != len(par8a.Penalties) || len(par8a.Penalties) != len(par8b.Penalties) {
		t.Fatalf("penalty counts differ: %d / %d / %d",
			len(serial.Penalties), len(par8a.Penalties), len(par8b.Penalties))
	}
	for i := range serial.Penalties {
		if serial.Penalties[i] != par8a.Penalties[i] || par8a.Penalties[i] != par8b.Penalties[i] {
			t.Errorf("penalty %d differs: serial %v, parallel %v, parallel-again %v",
				i, serial.Penalties[i], par8a.Penalties[i], par8b.Penalties[i])
		}
	}
	if serial.EqualSlowdownWorse != par8a.EqualSlowdownWorse || par8a.EqualSlowdownWorse != par8b.EqualSlowdownWorse {
		t.Errorf("EqualSlowdownWorse differs: %d / %d / %d",
			serial.EqualSlowdownWorse, par8a.EqualSlowdownWorse, par8b.EqualSlowdownWorse)
	}
	if serialOut != par8aOut || par8aOut != par8bOut {
		t.Errorf("rendered output differs across parallelism:\nserial:   %q\nparallel: %q\nagain:    %q",
			serialOut, par8aOut, par8bOut)
	}
}

// TestThroughputDeterministicAcrossParallelism asserts the Figure 13
// reproduction renders byte-identical output whatever the worker-pool
// width: rows are computed into a pre-sized slice and rendered in mix
// order only after the pool drains.
func TestThroughputDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) string {
		var buf bytes.Buffer
		if _, err := Fig13(Config{Accesses: 6000, Parallelism: parallelism, Out: &buf}); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return buf.String()
	}
	serial := run(1)
	par8 := run(8)
	if serial != par8 {
		t.Errorf("fig13 output differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s", serial, par8)
	}
}
