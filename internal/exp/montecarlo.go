package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"ref/internal/core"
	"ref/internal/mech"
	"ref/internal/par"
	"ref/internal/trace"
	"ref/internal/workloads"
)

// MCResult summarizes the Monte Carlo fairness-penalty study.
type MCResult struct {
	// Economies is the number of sampled mixes.
	Economies int
	// Penalties holds 1 − REF/unfair throughput per economy, sorted.
	Penalties []float64
	// Mean, P95, and Max summarize the distribution.
	Mean, P95, Max float64
	// EqualSlowdownWorse counts economies where equal slowdown delivered
	// less weighted throughput than REF.
	EqualSlowdownWorse int
}

// mcSeed is the base seed every economy's rand source derives from.
const mcSeed = 20140305

// ExtMC generalizes Figures 13–14 from ten curated mixes to a Monte Carlo
// sample: random 4-agent economies drawn from the fitted catalog. The
// paper's <10% fairness-penalty bound is checked in distribution, not just
// on WD1–WD10. Economies are independent trials: each derives its own rand
// source from (mcSeed, economy index) and they run concurrently, with
// results identical at any parallelism.
func ExtMC(cfg Config) (*MCResult, error) {
	fitted, err := workloads.FitAllParallel(cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	names := trace.Names()
	const economies = 100
	capacity := SystemCapacity(4)
	res := &MCResult{Economies: economies}
	penalties := make([]float64, economies)
	esWorse := make([]bool, economies)
	err = par.ForEach(economies, cfg.Parallelism, func(e int) error {
		rng := rand.New(rand.NewSource(trace.DeriveSeed(mcSeed, "ext-mc", strconv.Itoa(e))))
		agents := make([]core.Agent, 4)
		for i := range agents {
			n := names[rng.Intn(len(names))]
			agents[i] = core.Agent{
				Name:    fmt.Sprintf("%s#%d", n, i),
				Utility: fitted[n].Fit.Utility,
			}
		}
		xREF, err := mech.ProportionalElasticity{}.Allocate(agents, capacity)
		if err != nil {
			return err
		}
		xUnfair, err := mech.MaxWelfareUnfair{}.Allocate(agents, capacity)
		if err != nil {
			return err
		}
		xES, err := mech.EqualSlowdown{}.Allocate(agents, capacity)
		if err != nil {
			return err
		}
		wREF, err := mech.WeightedThroughput(agents, capacity, xREF)
		if err != nil {
			return err
		}
		wUnfair, err := mech.WeightedThroughput(agents, capacity, xUnfair)
		if err != nil {
			return err
		}
		wES, err := mech.WeightedThroughput(agents, capacity, xES)
		if err != nil {
			return err
		}
		if wUnfair > 0 {
			penalties[e] = 1 - wREF/wUnfair
		}
		esWorse[e] = wES < wREF
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Penalties = penalties
	for _, worse := range esWorse {
		if worse {
			res.EqualSlowdownWorse++
		}
	}
	sort.Float64s(res.Penalties)
	var sum float64
	for _, p := range res.Penalties {
		sum += p
	}
	res.Mean = sum / float64(economies)
	res.P95 = res.Penalties[economies*95/100]
	res.Max = res.Penalties[economies-1]
	w := cfg.out()
	fmt.Fprintf(w, "Monte Carlo fairness penalty over %d random 4-agent economies (catalog utilities):\n", economies)
	fmt.Fprintf(w, "mean=%.2f%% p95=%.2f%% max=%.2f%%; equal slowdown below REF in %d/%d economies\n",
		100*res.Mean, 100*res.P95, 100*res.Max, res.EqualSlowdownWorse, economies)
	return res, nil
}

func init() {
	register("ext-mc", "Monte Carlo fairness-penalty distribution (generalizes Figs. 13–14)", func(c Config) error {
		_, err := ExtMC(c)
		return err
	})
}
