package exp

import (
	"fmt"

	"ref/internal/sim"
	"ref/internal/trace"
	"ref/internal/workloads"
)

// Tab1 prints the platform parameters (Table 1).
func Tab1(cfg Config) error {
	w := cfg.out()
	p := sim.DefaultPlatform(sim.LLCSizes[0], sim.Bandwidths[0])
	fmt.Fprintln(w, "Table 1: platform parameters")
	fmt.Fprintf(w, "Processor      : %g GHz OOO cores, %d-width issue and commit, ROB %d, %d MSHRs\n",
		p.DRAM.CoreClockGHz, p.Core.IssueWidth, p.Core.ROBSize, p.Core.MSHRs)
	fmt.Fprintf(w, "L1 cache       : %d KB, %d-way, %d-byte blocks, %d-cycle latency\n",
		p.L1.SizeBytes>>10, p.L1.Ways, p.L1.BlockBytes, p.L1.HitLatency)
	fmt.Fprintf(w, "L2 cache       : {")
	for i, s := range sim.LLCSizes {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%d KB", s>>10)
	}
	fmt.Fprintf(w, "}, %d-way, %d-byte blocks, %d-cycle latency\n", p.LLC.Ways, p.LLC.BlockBytes, p.LLC.HitLatency)
	fmt.Fprintf(w, "DRAM controller: closed page, %d ch × %d ranks × %d banks, rank-then-bank round robin\n",
		p.DRAM.Channels, p.DRAM.RanksPerChannel, p.DRAM.BanksPerRank)
	fmt.Fprintf(w, "DRAM bandwidth : {")
	for i, b := range sim.Bandwidths {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%g GB/s", b)
	}
	fmt.Fprintln(w, "}, single channel (token-bucket provisioning)")
	return nil
}

// Fig8aRow is one benchmark's goodness of fit.
type Fig8aRow struct {
	Name string
	R2   float64
}

// Fig8a fits Cobb-Douglas utilities to all 28 benchmarks' profiles and
// reports R² per benchmark (Figure 8a).
func Fig8a(cfg Config) ([]Fig8aRow, error) {
	fitted, err := workloads.FitAllParallel(cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintln(w, "Figure 8a: coefficient of determination (R²) per benchmark")
	rows := make([]Fig8aRow, 0, len(fitted))
	for _, name := range trace.Names() {
		f := fitted[name]
		rows = append(rows, Fig8aRow{Name: name, R2: f.Fit.R2})
		fmt.Fprintf(w, "%-20s R2=%.3f\n", name, f.Fit.R2)
	}
	return rows, nil
}

// Fig8bPoint is one grid configuration's simulated and fitted IPC.
type Fig8bPoint struct {
	BandwidthGBps float64
	CacheMB       float64
	Simulated     float64
	Fitted        float64
}

// Fig8bSeries is one benchmark's curve.
type Fig8bSeries struct {
	Name   string
	R2     float64
	Points []Fig8bPoint
}

func fitCurves(cfg Config, names []string, header string) ([]Fig8bSeries, error) {
	spec := cfg.spec()
	fitted, err := workloads.FitAllSpec(spec, cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	// Resolve the plot axes by dim name, not position: the spec's dims may
	// be declared in any order. Unlabeled (legacy) specs keep the historical
	// (bandwidth, cache) positions.
	bwIdx, cacheIdx := spec.DimIndex("bandwidth"), spec.DimIndex("cache")
	if bwIdx < 0 {
		bwIdx = 0
	}
	if cacheIdx < 0 {
		cacheIdx = 1
	}
	w := cfg.out()
	fmt.Fprintln(w, header)
	out := make([]Fig8bSeries, 0, len(names))
	for _, name := range names {
		f, ok := fitted[name]
		if !ok {
			return nil, fmt.Errorf("exp: no fitted workload %q", name)
		}
		series := Fig8bSeries{Name: name, R2: f.Fit.R2}
		prof, err := sim.SweepSpecParallel(f.Workload.Config, spec, cfg.accesses(), cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%s (R2=%.3f):\n", name, f.Fit.R2)
		for _, s := range prof.Samples {
			pt := Fig8bPoint{
				BandwidthGBps: s.Alloc[bwIdx],
				CacheMB:       s.Alloc[cacheIdx],
				Simulated:     s.Perf,
				Fitted:        f.Fit.Predict(s.Alloc),
			}
			series.Points = append(series.Points, pt)
			fmt.Fprintf(w, "  (%4.1f GB/s, %5.3f MB) sim=%.3f est=%.3f\n",
				pt.BandwidthGBps, pt.CacheMB, pt.Simulated, pt.Fitted)
		}
		out = append(out, series)
	}
	return out, nil
}

// Fig8b plots simulated versus fitted IPC for the paper's high-R² examples
// (ferret, fmm).
func Fig8b(cfg Config) ([]Fig8bSeries, error) {
	return fitCurves(cfg, []string{"ferret", "fmm"},
		"Figure 8b: simulated vs fitted IPC, high-R² workloads")
}

// Fig8c plots the low-R² examples (radiosity, string_match).
func Fig8c(cfg Config) ([]Fig8bSeries, error) {
	return fitCurves(cfg, []string{"radiosity", "string_match"},
		"Figure 8c: simulated vs fitted IPC, low-R² workloads")
}

// Fig9Row is one benchmark's rescaled elasticities and classification.
type Fig9Row struct {
	Name       string
	AlphaMem   float64
	AlphaCache float64
	Class      trace.Class
	PaperClass trace.Class
}

// Fig9 reports rescaled elasticities and the C/M classification for all
// benchmarks (Figure 9).
func Fig9(cfg Config) ([]Fig9Row, error) {
	fitted, err := workloads.FitAllParallel(cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintln(w, "Figure 9: rescaled elasticities (α_mem + α_cache = 1) and C/M classes")
	rows := make([]Fig9Row, 0, len(fitted))
	for _, name := range trace.Names() {
		f := fitted[name]
		r := f.Fit.Utility.Rescaled()
		// Labeled fits locate the two elasticities by dim name; unlabeled
		// (legacy) fits keep the historical (bandwidth, cache) positions.
		memIdx, cacheIdx := f.Fit.DimIndex("bandwidth"), f.Fit.DimIndex("cache")
		if memIdx < 0 {
			memIdx = 0
		}
		if cacheIdx < 0 {
			cacheIdx = 1
		}
		row := Fig9Row{
			Name:       name,
			AlphaMem:   r.Alpha[memIdx],
			AlphaCache: r.Alpha[cacheIdx],
			Class:      f.FittedClass(),
			PaperClass: f.Workload.Class,
		}
		rows = append(rows, row)
		match := " "
		if row.Class != row.PaperClass {
			match = "!"
		}
		fmt.Fprintf(w, "%-20s α_mem=%.3f α_cache=%.3f class=%s paper=%s %s\n",
			name, row.AlphaMem, row.AlphaCache, row.Class, row.PaperClass, match)
	}
	return rows, nil
}

func init() {
	register("tab1", "Platform parameters (Table 1)", Tab1)
	register("fig8a", "Cobb-Douglas goodness of fit per benchmark (Figure 8a)", func(c Config) error {
		_, err := Fig8a(c)
		return err
	})
	register("fig8b", "Simulated vs fitted IPC, high-R² workloads (Figure 8b)", func(c Config) error {
		_, err := Fig8b(c)
		return err
	})
	register("fig8c", "Simulated vs fitted IPC, low-R² workloads (Figure 8c)", func(c Config) error {
		_, err := Fig8c(c)
		return err
	})
	register("fig9", "Rescaled elasticities and C/M classes (Figure 9)", func(c Config) error {
		_, err := Fig9(c)
		return err
	})
}
