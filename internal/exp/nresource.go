package exp

import (
	"fmt"

	"ref/internal/cobb"
	"ref/internal/fair"
	"ref/internal/mech"
	"ref/internal/par"
	"ref/internal/platform"
	"ref/internal/sim"
	"ref/internal/trace"
	"ref/internal/workloads"
)

// NResourceRow is one agent's fitted model, REF allocation, and achieved
// co-run performance in the N-resource experiment.
type NResourceRow struct {
	Name string
	// Alpha is the rescaled elasticity vector, in spec dim order.
	Alpha []float64
	// R2 is the goodness of the sim-backed Cobb-Douglas fit.
	R2 float64
	// Alloc is the agent's REF (Eq. 13) allocation, in spec dim order.
	Alloc []float64
	// IPC is the agent's achieved instructions per cycle when the mix
	// co-runs under the enforced allocation.
	IPC float64
}

// NResourceResult is the end-to-end N-resource REF outcome.
type NResourceResult struct {
	Spec     platform.Spec
	MixID    string
	Capacity []float64
	Rows     []NResourceRow
	// Throughput is the weighted system throughput (Eq. 17) of the REF
	// allocation.
	Throughput float64
	// Report audits SI, EF, and PE on the fitted utilities.
	Report fair.Report
}

// NResource runs the whole REF pipeline over an N-resource platform: sweep
// the spec's profiling grid with the simulator, fit R-dimensional
// Cobb-Douglas utilities, allocate by proportional elasticity (Eq. 13),
// audit sharing incentives / envy-freeness / Pareto efficiency, and co-run
// the mix under the enforced allocation. The default spec is the
// 3-resource machine (bandwidth, cache, core frequency); cfg.Spec
// substitutes any other resource model. The mix is WD2 — the paper's
// balanced 2C-2M four-core mix.
func NResource(cfg Config) (*NResourceResult, error) {
	spec := cfg.Spec
	if len(spec.Dims) == 0 {
		spec = platform.ThreeResource()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mix := workloads.Table2()[1] // WD2
	// Fit only the mix's benchmarks: each join goes through the memoized
	// single-workload path, so the experiment never pays a full-catalog
	// sweep on a non-default spec.
	names := mix.Benchmarks
	fitted := make(map[string]workloads.Fitted, len(names))
	fits := make([]workloads.Fitted, len(names))
	err := par.ForEach(len(names), cfg.Parallelism, func(i int) error {
		f, err := workloads.FitWorkloadSpec(spec, names[i], cfg.accesses(), 1)
		if err != nil {
			return err
		}
		fits[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		fitted[name] = fits[i]
	}
	agents, err := mix.Agents(fitted)
	if err != nil {
		return nil, err
	}
	capacity := spec.Capacities()
	x, err := mech.ProportionalElasticity{}.Allocate(agents, capacity)
	if err != nil {
		return nil, fmt.Errorf("exp: proportional elasticity: %w", err)
	}
	wt, err := mech.WeightedThroughput(agents, capacity, x)
	if err != nil {
		return nil, err
	}
	utils := make([]cobb.Utility, len(agents))
	for i, a := range agents {
		utils[i] = a.Utility
	}
	rep, err := fair.Audit(utils, capacity, x, fair.DefaultTolerance())
	if err != nil {
		return nil, err
	}
	// Close the loop: enforce the allocation and co-run the mix on the
	// simulated machine.
	configs := make([]trace.Config, len(names))
	for i, name := range names {
		configs[i] = fitted[name].Workload.Config
	}
	corun, err := sim.CoRunSpec(configs, spec, x, cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}

	res := &NResourceResult{Spec: spec, MixID: mix.ID, Capacity: capacity, Throughput: wt, Report: rep}
	for i, name := range names {
		r := fitted[name].Fit.Utility.Rescaled()
		res.Rows = append(res.Rows, NResourceRow{
			Name:  name,
			Alpha: r.Alpha,
			R2:    fitted[name].Fit.R2,
			Alloc: x[i],
			IPC:   corun.Agents[i].IPC(),
		})
	}

	w := cfg.out()
	fmt.Fprintf(w, "N-resource REF: mix %s on spec %q (%d resources)\n", mix.ID, spec.Name, spec.NumResources())
	fmt.Fprintln(w, "fitted elasticities (rescaled):")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "  %-14s", row.Name)
		for j, d := range spec.Dims {
			fmt.Fprintf(w, " α_%s=%.3f", d.Name, row.Alpha[j])
		}
		fmt.Fprintf(w, "  R2=%.3f\n", row.R2)
	}
	fmt.Fprintln(w, "REF allocation (Eq. 13) and co-run performance:")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "  %-14s", row.Name)
		for j, d := range spec.Dims {
			fmt.Fprintf(w, "  %s", d.FormatValue(row.Alloc[j]))
		}
		fmt.Fprintf(w, "  IPC=%.3f\n", row.IPC)
	}
	fmt.Fprint(w, "  capacity      ")
	for _, d := range spec.Dims {
		fmt.Fprintf(w, "  %s", d.FormatValue(d.Capacity))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "weighted throughput=%.3f  REF audit: %s\n", res.Throughput, res.Report)
	return res, nil
}

func init() {
	register("nresource", "End-to-end REF over an N-resource platform spec", func(c Config) error {
		_, err := NResource(c)
		return err
	})
}
