package exp

import (
	"fmt"

	"ref/internal/cobb"
	"ref/internal/fair"
	"ref/internal/mech"
	"ref/internal/par"
	"ref/internal/platform"
	"ref/internal/spl"
	"ref/internal/workloads"
)

// SystemCapacity returns the shared-machine capacity for an n-core mix:
// the Table 1 top configuration (12.8 GB/s, 2 MB) scaled so that per-core
// resources stay within the profiled grid. Four cores share one socket's
// machine; eight cores share a dual-socket equivalent.
func SystemCapacity(cores int) []float64 {
	if cores <= 4 {
		return []float64{12.8, 2.0}
	}
	return []float64{25.6, 4.0}
}

// specCapacity generalizes SystemCapacity to any platform spec: the
// single-socket capacity is each dim's profiled maximum, and eight-core
// mixes get the dual-socket equivalent (every dim doubled). For the
// default 2-resource spec this reproduces SystemCapacity exactly.
func specCapacity(spec platform.Spec, cores int) []float64 {
	cap := spec.Capacities()
	if cores > 4 {
		for i := range cap {
			cap[i] *= 2
		}
	}
	return cap
}

// Tab2 prints the Table 2 workload characterization.
func Tab2(cfg Config) error {
	w := cfg.out()
	fmt.Fprintln(w, "Table 2: workload characterization")
	for _, m := range workloads.Table2() {
		label, err := m.ClassLabel()
		if err != nil {
			return err
		}
		note := ""
		if label != m.PaperLabel {
			note = fmt.Sprintf("  (paper printed %s; see DESIGN.md on Table 2 inconsistency)", m.PaperLabel)
		}
		fmt.Fprintf(w, "%-5s %-6s %v%s\n", m.ID, label, m.Benchmarks, note)
	}
	return nil
}

// ThroughputRow is one mix's weighted system throughput under each
// mechanism (one cluster of bars in Figures 13 and 14).
type ThroughputRow struct {
	Mix   workloads.Mix
	Label string
	// Throughput maps mechanism name to Σ U_i.
	Throughput map[string]float64
	// RefAudit is the SI/EF/PE audit of the REF (proportional elasticity)
	// allocation for this mix — the paper claims all three hold, and the
	// audit makes each run verify it (and feed the
	// ref_fair_checks_total observability counters).
	RefAudit fair.Report
}

// FairnessPenalty returns 1 − (REF throughput / unfair max-welfare
// throughput): the price of SI, EF, and PE that §5.5 bounds at 10%.
func (r ThroughputRow) FairnessPenalty() float64 {
	unfair := r.Throughput[mech.MaxWelfareUnfair{}.Name()]
	ref := r.Throughput[mech.ProportionalElasticity{}.Name()]
	if unfair <= 0 {
		return 0
	}
	return 1 - ref/unfair
}

// throughputMechanisms returns the four mechanisms of Figures 13–14 in the
// paper's legend order.
func throughputMechanisms() []mech.Mechanism {
	return []mech.Mechanism{
		mech.MaxWelfareFair{},
		mech.ProportionalElasticity{},
		mech.MaxWelfareUnfair{},
		mech.EqualSlowdown{},
	}
}

func runThroughput(cfg Config, mixes []workloads.Mix, header string) ([]ThroughputRow, error) {
	spec := cfg.spec()
	fitted, err := workloads.FitAllSpec(spec, cfg.accesses(), cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	// Each mix is an independent allocate-and-score unit; fan them out and
	// render afterwards in input order so output is deterministic.
	rows := make([]ThroughputRow, len(mixes))
	err = par.ForEach(len(mixes), cfg.Parallelism, func(i int) error {
		m := mixes[i]
		agents, err := m.Agents(fitted)
		if err != nil {
			return err
		}
		cap := specCapacity(spec, len(agents))
		label, err := m.ClassLabel()
		if err != nil {
			return err
		}
		row := ThroughputRow{Mix: m, Label: label, Throughput: map[string]float64{}}
		for _, mc := range throughputMechanisms() {
			x, err := mc.Allocate(agents, cap)
			if err != nil {
				return fmt.Errorf("exp: %s on %s: %w", mc.Name(), m.ID, err)
			}
			wt, err := mech.WeightedThroughput(agents, cap, x)
			if err != nil {
				return err
			}
			row.Throughput[mc.Name()] = wt
			if (mc == mech.ProportionalElasticity{}) {
				utils := make([]cobb.Utility, len(agents))
				for k, a := range agents {
					utils[k] = a.Utility
				}
				row.RefAudit, err = fair.Audit(utils, cap, x, fair.DefaultTolerance())
				if err != nil {
					return fmt.Errorf("exp: audit %s on %s: %w", mc.Name(), m.ID, err)
				}
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintln(w, header)
	for _, row := range rows {
		fmt.Fprintf(w, "%-5s (%s)", row.Mix.ID, row.Label)
		for _, mc := range throughputMechanisms() {
			fmt.Fprintf(w, "  %s=%.3f", shortName(mc.Name()), row.Throughput[mc.Name()])
		}
		fmt.Fprintf(w, "  fairness penalty=%.1f%%  REF audit: %s\n", 100*row.FairnessPenalty(), row.RefAudit)
	}
	return rows, nil
}

// shortName compresses mechanism names for row output.
func shortName(name string) string {
	switch name {
	case "Max Welfare w/ Fairness":
		return "MaxWelFair"
	case "Proportional Elasticity w/ Fairness":
		return "PropElast"
	case "Max Welfare w/o Fairness":
		return "MaxWelUnfair"
	case "Equal Slowdown w/o Fairness":
		return "EqualSlow"
	default:
		return name
	}
}

// Fig13 reports weighted system throughput for the 4-core mixes WD1–WD5.
func Fig13(cfg Config) ([]ThroughputRow, error) {
	return runThroughput(cfg, workloads.FourCore(),
		"Figure 13: weighted system throughput, 4-core system (WD1–WD5)")
}

// Fig14 reports weighted system throughput for the 8-core mixes WD6–WD10.
func Fig14(cfg Config) ([]ThroughputRow, error) {
	return runThroughput(cfg, workloads.EightCore(),
		"Figure 14: weighted system throughput, 8-core system (WD6–WD10)")
}

// SPL64Result is the §4.3 strategy-proofness experiment.
type SPL64Result struct {
	Points []spl.SweepPoint
}

// SPL64 sweeps best-response deviations from 2 to 64 agents with uniform
// random elasticities, reproducing the §4.3 claim that tens of agents
// suffice for SPL.
func SPL64(cfg Config) (*SPL64Result, error) {
	pts, err := spl.DeviationSweepParallel([]int{2, 4, 8, 16, 32, 64}, 2, 8, 20140301, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	w := cfg.out()
	fmt.Fprintln(w, "SPL (§4.3): best-response deviation from truthful elasticities vs system size")
	for _, p := range pts {
		fmt.Fprintf(w, "N=%-3d max|α'−α|=%.4f mean=%.4f max gain=%.4f%%\n",
			p.N, p.MaxDeviation, p.MeanDeviation, 100*p.MaxGain)
	}
	return &SPL64Result{Points: pts}, nil
}

func init() {
	register("tab2", "Workload characterization (Table 2)", Tab2)
	register("fig13", "Weighted system throughput, 4-core (Figure 13)", func(c Config) error {
		_, err := Fig13(c)
		return err
	})
	register("fig14", "Weighted system throughput, 8-core (Figure 14)", func(c Config) error {
		_, err := Fig14(c)
		return err
	})
	register("spl64", "Strategy-proofness in the large, 64 tasks (§4.3)", func(c Config) error {
		_, err := SPL64(c)
		return err
	})
}
