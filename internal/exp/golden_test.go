package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files from the current output:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files with current experiment output")

// TestGoldenThroughputTables locks the rendered fig13/fig14 table output
// against committed goldens. The tables are a function of the deterministic
// profiling sweep and the mechanisms only, so any diff is a real behavior
// change: either intentional (rerun with -update and review the diff) or a
// regression (fix it). The goldens use the test access budget, sharing the
// memoized FitAll sweep with the rest of this package's tests.
func TestGoldenThroughputTables(t *testing.T) {
	cases := []struct {
		name string
		run  func(Config) ([]ThroughputRow, error)
	}{
		{"fig13", Fig13},
		{"fig14", Fig14},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := testCfg
			cfg.Out = &buf
			rows, err := c.run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 5 {
				t.Fatalf("%s rendered %d rows, want 5", c.name, len(rows))
			}
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output diverged from %s\n--- got ---\n%s--- want ---\n%s",
					c.name, path, buf.Bytes(), want)
			}
		})
	}
}
