package cpu

import (
	"errors"
	"testing"
)

// scriptSource replays a fixed access script.
type scriptSource struct {
	addrs  []uint64
	writes []bool
	gaps   []int
	i      int
}

func (s *scriptSource) NextAccess() (uint64, bool, int) {
	i := s.i
	s.i++
	return s.addrs[i%len(s.addrs)], s.writes[i%len(s.writes)], s.gaps[i%len(s.gaps)]
}

// fixedMem returns a memory with constant latency.
func fixedMem(lat int64) MemFunc {
	return func(addr uint64, write bool, now int64) int64 { return now + lat }
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{IssueWidth: 0, ROBSize: 1, MSHRs: 1},
		{IssueWidth: 1, ROBSize: 0, MSHRs: 1},
		{IssueWidth: 1, ROBSize: 1, MSHRs: 0},
		{IssueWidth: 1, ROBSize: 1, MSHRs: 1, L1HitCycles: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, fixedMem(1)); !errors.Is(err, ErrBadConfig) {
		t.Error("invalid config accepted")
	}
	if _, err := New(DefaultConfig(), nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil memory accepted")
	}
}

func TestAllHitsRunAtIssueWidth(t *testing.T) {
	// With only L1 hits and gap 7 (8 instructions per access at width 4
	// → 2 cycles), IPC must be ≈ 4.
	core, err := New(DefaultConfig(), fixedMem(2))
	if err != nil {
		t.Fatal(err)
	}
	src := &scriptSource{addrs: []uint64{0}, writes: []bool{false}, gaps: []int{7}}
	res := core.Run(src, 10000)
	if ipc := res.IPC(); ipc < 3.9 || ipc > 4.01 {
		t.Errorf("all-hit IPC = %v, want ≈4", ipc)
	}
	if res.LoadMisses != 0 {
		t.Errorf("load misses = %d, want 0", res.LoadMisses)
	}
}

func TestMissLatencyReducesIPC(t *testing.T) {
	run := func(lat int64) float64 {
		core, _ := New(DefaultConfig(), fixedMem(lat))
		src := &scriptSource{addrs: []uint64{0}, writes: []bool{false}, gaps: []int{9}}
		return core.Run(src, 5000).IPC()
	}
	fast := run(2)    // hit
	slow := run(100)  // miss
	awful := run(600) // heavily loaded DRAM
	if !(fast > slow && slow > awful) {
		t.Errorf("IPC not decreasing with latency: %v, %v, %v", fast, slow, awful)
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// With MSHRs=8 and back-to-back independent misses, eight misses
	// overlap; with MSHRs=1 they serialize. IPC ratio should approach
	// the MLP factor.
	run := func(mshrs int) float64 {
		cfg := DefaultConfig()
		cfg.MSHRs = mshrs
		core, _ := New(cfg, fixedMem(200))
		src := &scriptSource{addrs: []uint64{0}, writes: []bool{false}, gaps: []int{3}}
		return core.Run(src, 5000).IPC()
	}
	wide := run(8)
	narrow := run(1)
	if wide <= narrow*3 {
		t.Errorf("MLP speedup only %vx (wide %v, narrow %v)", wide/narrow, wide, narrow)
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	// A tiny ROB forces the core to stall on each miss even with many
	// MSHRs.
	run := func(rob int) float64 {
		cfg := DefaultConfig()
		cfg.ROBSize = rob
		core, _ := New(cfg, fixedMem(300))
		src := &scriptSource{addrs: []uint64{0}, writes: []bool{false}, gaps: []int{9}}
		return core.Run(src, 5000).IPC()
	}
	big := run(512)
	tiny := run(8)
	if big <= tiny*1.5 {
		t.Errorf("ROB size has no effect: big %v, tiny %v", big, tiny)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	// All-store streams never occupy MSHRs, so IPC stays at issue width
	// even with slow memory.
	core, _ := New(DefaultConfig(), fixedMem(500))
	src := &scriptSource{addrs: []uint64{0}, writes: []bool{true}, gaps: []int{7}}
	res := core.Run(src, 5000)
	if ipc := res.IPC(); ipc < 3.9 {
		t.Errorf("store-only IPC = %v, want ≈4 (store buffer)", ipc)
	}
}

func TestResultIPCZeroCycles(t *testing.T) {
	var r Result
	if r.IPC() != 0 {
		t.Error("IPC of empty result != 0")
	}
}

func TestInstructionAccounting(t *testing.T) {
	core, _ := New(DefaultConfig(), fixedMem(2))
	src := &scriptSource{addrs: []uint64{0}, writes: []bool{false}, gaps: []int{9}}
	res := core.Run(src, 100)
	// Each access contributes gap + the memory instruction itself.
	if res.Instructions != 100*10 {
		t.Errorf("instructions = %d, want 1000", res.Instructions)
	}
}

func TestMemFuncSeesMonotoneTime(t *testing.T) {
	var last int64 = -1
	mem := func(addr uint64, write bool, now int64) int64 {
		if now < last {
			t.Fatalf("time went backwards: %d after %d", now, last)
		}
		last = now
		return now + 50
	}
	core, _ := New(DefaultConfig(), mem)
	src := &scriptSource{addrs: []uint64{0, 64, 128}, writes: []bool{false, true, false}, gaps: []int{3, 11, 2}}
	core.Run(src, 3000)
}
