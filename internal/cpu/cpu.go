// Package cpu models the out-of-order cores of Table 1 (3 GHz, 4-wide
// issue/commit) at the interval-analysis level of detail, replacing the
// MARSSx86 timing model. The core executes non-memory instructions at issue
// width, overlaps cache misses up to a memory-level-parallelism limit
// (MSHRs), and stalls when the reorder buffer fills behind an outstanding
// load. Store misses drain through a store buffer and do not stall retire,
// but they do consume memory bandwidth.
//
// Interval analysis reproduces the two first-order couplings the REF
// evaluation needs — IPC falls as the miss rate rises (cache sensitivity)
// and as memory latency rises under bandwidth contention (bandwidth
// sensitivity) — while remaining fast enough to sweep 28 workloads × 25
// configurations in seconds.
package cpu

import (
	"errors"
	"fmt"
)

// ErrBadConfig reports invalid core parameters.
var ErrBadConfig = errors.New("cpu: bad config")

// Config describes one core.
type Config struct {
	// IssueWidth is instructions issued (and committed) per cycle
	// (Table 1: 4).
	IssueWidth int
	// ROBSize is the reorder-buffer capacity in instructions.
	ROBSize int
	// MSHRs bounds concurrently outstanding load misses
	// (memory-level parallelism).
	MSHRs int
	// L1HitCycles is the pipelined L1 hit latency; hits under this
	// latency never stall the core.
	L1HitCycles int
}

// DefaultConfig matches Table 1 with typical OOO structures.
func DefaultConfig() Config {
	return Config{IssueWidth: 4, ROBSize: 192, MSHRs: 8, L1HitCycles: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.ROBSize <= 0 || c.MSHRs <= 0 || c.L1HitCycles < 0 {
		return fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	return nil
}

// MemFunc resolves one memory access issued at core cycle `now`, returning
// the cycle at which its data is available. Implementations wire the cache
// hierarchy and DRAM controller (see internal/sim).
type MemFunc func(addr uint64, write bool, now int64) int64

// AccessSource supplies the instruction stream: each call returns the next
// access and the count of non-memory instructions preceding it.
type AccessSource interface {
	NextAccess() (addr uint64, write bool, gap int)
}

// Result summarizes one simulation run.
type Result struct {
	// Instructions is the total committed instruction count (memory and
	// non-memory).
	Instructions int64
	// Cycles is the elapsed core cycles.
	Cycles int64
	// LoadMisses counts loads that stalled past the L1.
	LoadMisses int64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// pendingMiss tracks one outstanding load miss.
type pendingMiss struct {
	done  int64 // completion cycle
	instr int64 // instruction index at issue
}

// Core is the interval-analysis engine.
type Core struct {
	cfg Config
	mem MemFunc
}

// New builds a core bound to a memory hierarchy.
func New(cfg Config, mem MemFunc) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("%w: nil memory function", ErrBadConfig)
	}
	return &Core{cfg: cfg, mem: mem}, nil
}

// Stepper advances one core's execution a single memory access at a time,
// so several agents' cores can be interleaved on shared hardware by a
// round-robin-by-cycle scheduler (see internal/sim's unmanaged co-run).
type Stepper struct {
	cfg         Config
	mem         MemFunc
	cycle       int64
	instrs      int64
	misses      int64
	outstanding []pendingMiss
}

// NewStepper builds a steppable core bound to a memory hierarchy.
func NewStepper(cfg Config, mem MemFunc) (*Stepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("%w: nil memory function", ErrBadConfig)
	}
	return &Stepper{cfg: cfg, mem: mem}, nil
}

// Cycle returns the core's current cycle.
func (s *Stepper) Cycle() int64 { return s.cycle }

func (s *Stepper) retireOldest() {
	m := s.outstanding[0]
	s.outstanding = s.outstanding[1:]
	if m.done > s.cycle {
		s.cycle = m.done
	}
}

// Step executes the next access from src (its gap instructions plus the
// memory reference itself), advancing the core's clock.
func (s *Stepper) Step(src AccessSource) {
	addr, write, gap := src.NextAccess()
	width := int64(s.cfg.IssueWidth)
	rob := int64(s.cfg.ROBSize)
	// Execute the non-memory gap at issue width.
	s.instrs += int64(gap) + 1
	s.cycle += (int64(gap) + width - 1) / width
	// ROB pressure: any miss issued more than ROBSize instructions ago
	// must have retired before this instruction can issue.
	for len(s.outstanding) > 0 && s.outstanding[0].instr <= s.instrs-rob {
		s.retireOldest()
	}
	done := s.mem(addr, write, s.cycle)
	lat := done - s.cycle
	if write || lat <= int64(s.cfg.L1HitCycles) {
		// Pipelined hit, or a store absorbed by the store buffer.
		return
	}
	s.misses++
	// MSHR pressure: block until a slot frees.
	for len(s.outstanding) >= s.cfg.MSHRs {
		s.retireOldest()
	}
	s.outstanding = append(s.outstanding, pendingMiss{done: done, instr: s.instrs})
}

// Finish drains outstanding misses and returns the summary.
func (s *Stepper) Finish() Result {
	for len(s.outstanding) > 0 {
		s.retireOldest()
	}
	cycle := s.cycle
	if cycle == 0 {
		cycle = 1
	}
	return Result{Instructions: s.instrs, Cycles: cycle, LoadMisses: s.misses}
}

// Run simulates nAccesses memory references drawn from src and returns the
// performance summary.
func (c *Core) Run(src AccessSource, nAccesses int) Result {
	s := &Stepper{cfg: c.cfg, mem: c.mem}
	for i := 0; i < nAccesses; i++ {
		s.Step(src)
	}
	return s.Finish()
}
