package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ref/internal/opt"
)

func mono(c float64, exp ...float64) Monomial { return Monomial{Coeff: c, Exp: exp} }

func TestValidation(t *testing.T) {
	if _, err := New(0); !errors.Is(err, ErrBadProgram) {
		t.Error("0 variables accepted")
	}
	p, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MaximizeMonomial(mono(-1, 1, 0)); !errors.Is(err, ErrBadProgram) {
		t.Error("negative coefficient accepted")
	}
	if err := p.MaximizeMonomial(mono(1, 1)); !errors.Is(err, ErrBadProgram) {
		t.Error("wrong arity accepted")
	}
	if err := p.AddUpperBound(nil); !errors.Is(err, ErrBadProgram) {
		t.Error("empty posynomial accepted")
	}
	if err := p.AddLinearCapacity([]float64{1}, 5); !errors.Is(err, ErrBadProgram) {
		t.Error("wrong-length capacity accepted")
	}
	if err := p.AddLinearCapacity([]float64{1, -1}, 5); !errors.Is(err, ErrBadProgram) {
		t.Error("negative capacity coefficient accepted")
	}
	if err := p.AddLinearCapacity([]float64{0, 0}, 5); !errors.Is(err, ErrBadProgram) {
		t.Error("all-zero capacity row accepted")
	}
	if _, _, err := p.Solve(Config{}); !errors.Is(err, ErrBadProgram) {
		t.Error("missing objective accepted")
	}
	if err := p.MaximizeMonomial(mono(1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Solve(Config{}); !errors.Is(err, ErrBadProgram) {
		t.Error("unconstrained program accepted")
	}
}

func TestSolveSimpleBound(t *testing.T) {
	// max x s.t. x ≤ 5.
	p, _ := New(1)
	if err := p.MaximizeMonomial(mono(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLinearCapacity([]float64{1}, 5); err != nil {
		t.Fatal(err)
	}
	x, rep, err := p.Solve(Config{})
	if err != nil {
		t.Fatalf("Solve: %v (%+v)", err, rep)
	}
	if math.Abs(x[0]-5) > 0.02 {
		t.Errorf("x = %v, want 5", x[0])
	}
	if math.Abs(rep.Objective-5) > 0.02 {
		t.Errorf("objective = %v", rep.Objective)
	}
}

func TestSolveProductUnderSum(t *testing.T) {
	// max x·y s.t. x + y ≤ 4 → x = y = 2 (AM-GM).
	p, _ := New(2)
	if err := p.MaximizeMonomial(mono(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLinearCapacity([]float64{1, 1}, 4); err != nil {
		t.Fatal(err)
	}
	x, _, err := p.Solve(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 0.02 || math.Abs(x[1]-2) > 0.02 {
		t.Errorf("x = %v, want (2, 2)", x)
	}
}

func TestSolveWeightedProduct(t *testing.T) {
	// max x^0.6·y^0.4 s.t. x + y ≤ 10 → x = 6, y = 4 (Cobb-Douglas
	// budget shares — the structure underlying Equation 13).
	p, _ := New(2)
	if err := p.MaximizeMonomial(mono(1, 0.6, 0.4)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLinearCapacity([]float64{1, 1}, 10); err != nil {
		t.Fatal(err)
	}
	x, _, err := p.Solve(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-6) > 0.05 || math.Abs(x[1]-4) > 0.05 {
		t.Errorf("x = %v, want (6, 4)", x)
	}
}

// The REF program as a GP: maximize ∏_i û_i(x_i) subject to per-resource
// capacity. The GP solution must match the Equation 13 closed form — this
// is the paper's CVX pathway reproduced end to end.
func TestSolveREFNashProgram(t *testing.T) {
	// Two agents, two resources: variables x11, x12, x21, x22.
	alphas := [][]float64{{0.6, 0.4}, {0.2, 0.8}}
	capacity := []float64{24, 12}
	p, _ := New(4)
	obj := mono(1, alphas[0][0], alphas[0][1], alphas[1][0], alphas[1][1])
	if err := p.MaximizeMonomial(obj); err != nil {
		t.Fatal(err)
	}
	// Resource 0: x11 + x21 ≤ 24; resource 1: x12 + x22 ≤ 12.
	if err := p.AddLinearCapacity([]float64{1, 0, 1, 0}, capacity[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLinearCapacity([]float64{0, 1, 0, 1}, capacity[1]); err != nil {
		t.Fatal(err)
	}
	x, rep, err := p.Solve(Config{MaxIters: 60000})
	if err != nil {
		t.Fatalf("Solve: %v (%+v)", err, rep)
	}
	want, err := opt.Proportional(alphas, capacity)
	if err != nil {
		t.Fatal(err)
	}
	got := [][]float64{{x[0], x[1]}, {x[2], x[3]}}
	for i := range want {
		for r := range want[i] {
			if math.Abs(got[i][r]-want[i][r]) > 0.05*capacity[r] {
				t.Errorf("x[%d][%d] = %v, closed form %v", i, r, got[i][r], want[i][r])
			}
		}
	}
}

func TestSolveGeneralPosynomialBound(t *testing.T) {
	// max x·y s.t. x·y² + x ≤ 8 (a genuinely posynomial constraint).
	p, _ := New(2)
	if err := p.MaximizeMonomial(mono(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	pos := Posynomial{mono(1.0/8, 1, 2), mono(1.0/8, 1, 0)}
	if err := p.AddUpperBound(pos); err != nil {
		t.Fatal(err)
	}
	x, _, err := p.Solve(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility at the returned point.
	if v := pos.Eval(x); v > 1.001 {
		t.Errorf("constraint value %v > 1", v)
	}
	// Analytic optimum: maximize log x + log y s.t. x(y²+1) ≤ 8. At the
	// boundary x = 8/(y²+1); objective ∝ y/(y²+1) maximized at y = 1,
	// x = 4 → obj 4.
	if math.Abs(x[1]-1) > 0.05 || math.Abs(x[0]-4) > 0.2 {
		t.Errorf("x = %v, want ≈(4, 1)", x)
	}
}

func TestSolveWithInit(t *testing.T) {
	p, _ := New(1)
	if err := p.MaximizeMonomial(mono(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLinearCapacity([]float64{1}, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Solve(Config{Init: []float64{-1}}); !errors.Is(err, ErrBadProgram) {
		t.Error("negative init accepted")
	}
	if _, _, err := p.Solve(Config{Init: []float64{1, 2}}); !errors.Is(err, ErrBadProgram) {
		t.Error("wrong-length init accepted")
	}
	x, _, err := p.Solve(Config{Init: []float64{2.9}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 0.02 {
		t.Errorf("x = %v", x[0])
	}
}

func TestMonomialEval(t *testing.T) {
	m := mono(2, 1, 0.5)
	if got := m.Eval([]float64{3, 4}); math.Abs(got-12) > 1e-9 {
		t.Errorf("Eval = %v, want 12", got)
	}
	if got := m.Eval([]float64{0, 4}); got != 0 {
		t.Errorf("Eval at zero = %v", got)
	}
}

// Property: for random Cobb-Douglas budget problems, the GP solution tracks
// the closed-form budget shares.
func TestBudgetShareProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + 0.8*rng.Float64()
		budget := 1 + rng.Float64()*20
		p, err := New(2)
		if err != nil {
			return false
		}
		if err := p.MaximizeMonomial(mono(1, a, 1-a)); err != nil {
			return false
		}
		if err := p.AddLinearCapacity([]float64{1, 1}, budget); err != nil {
			return false
		}
		x, _, err := p.Solve(Config{MaxIters: 20000})
		if err != nil {
			return false
		}
		return math.Abs(x[0]-a*budget) < 0.03*budget &&
			math.Abs(x[1]-(1-a)*budget) < 0.03*budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
