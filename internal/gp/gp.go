// Package gp implements the small geometric-programming (GP) toolkit the
// REF paper's evaluation leans on. Footnote 2 of the paper: "Cobb-Douglas
// is a monomial function … and geometric programming can maximize
// monomials"; the authors used CVX. This package provides the same
// modeling surface in pure Go:
//
//   - Monomial      c·∏ x_i^{a_i}, c > 0
//   - Posynomial    sum of monomials
//   - Program       maximize a monomial subject to posynomial ≤ 1
//     constraints over positive variables
//
// After the standard log transform y = log x, a monomial becomes affine and
// a posynomial-≤-1 constraint becomes log-sum-exp(affine) ≤ 0, which is
// convex; Solve runs penalized gradient ascent in y-space with the same
// best-feasible-iterate tracking as internal/opt. The solver is validated
// in tests against closed forms, including the REF Nash-welfare program.
package gp

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadProgram reports a malformed GP model.
var ErrBadProgram = errors.New("gp: bad program")

// ErrNoConvergence reports that the iteration budget ended infeasible.
var ErrNoConvergence = errors.New("gp: did not converge")

// Monomial is c·∏ x_i^{Exp[i]} with positive coefficient c.
type Monomial struct {
	Coeff float64
	Exp   []float64
}

// Validate checks the monomial against a variable count.
func (m Monomial) Validate(nVars int) error {
	if m.Coeff <= 0 || math.IsNaN(m.Coeff) || math.IsInf(m.Coeff, 0) {
		return fmt.Errorf("%w: monomial coefficient %v must be positive and finite", ErrBadProgram, m.Coeff)
	}
	if len(m.Exp) != nVars {
		return fmt.Errorf("%w: monomial has %d exponents, program has %d variables", ErrBadProgram, len(m.Exp), nVars)
	}
	for i, e := range m.Exp {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("%w: exponent[%d] = %v", ErrBadProgram, i, e)
		}
	}
	return nil
}

// Eval evaluates the monomial at x (componentwise positive).
func (m Monomial) Eval(x []float64) float64 {
	v := math.Log(m.Coeff)
	for i, e := range m.Exp {
		if e == 0 {
			continue
		}
		if x[i] <= 0 {
			return 0
		}
		v += e * math.Log(x[i])
	}
	return math.Exp(v)
}

// logEval returns log of the monomial at y = log x: affine in y.
func (m Monomial) logEval(y []float64) float64 {
	v := math.Log(m.Coeff)
	for i, e := range m.Exp {
		v += e * y[i]
	}
	return v
}

// Posynomial is a sum of monomials.
type Posynomial []Monomial

// Validate checks all terms.
func (p Posynomial) Validate(nVars int) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: empty posynomial", ErrBadProgram)
	}
	for i, m := range p {
		if err := m.Validate(nVars); err != nil {
			return fmt.Errorf("term %d: %w", i, err)
		}
	}
	return nil
}

// Eval evaluates the posynomial at x.
func (p Posynomial) Eval(x []float64) float64 {
	var s float64
	for _, m := range p {
		s += m.Eval(x)
	}
	return s
}

// logSumExp returns log Σ exp(logEval terms) at y, with the max-shift trick.
func (p Posynomial) logSumExp(y []float64) float64 {
	maxv := math.Inf(-1)
	for _, m := range p {
		if v := m.logEval(y); v > maxv {
			maxv = v
		}
	}
	var s float64
	for _, m := range p {
		s += math.Exp(m.logEval(y) - maxv)
	}
	return maxv + math.Log(s)
}

// lseGrad accumulates the gradient of logSumExp at y into grad, scaled.
func (p Posynomial) lseGrad(y []float64, scale float64, grad []float64) {
	maxv := math.Inf(-1)
	for _, m := range p {
		if v := m.logEval(y); v > maxv {
			maxv = v
		}
	}
	var z float64
	ws := make([]float64, len(p))
	for i, m := range p {
		ws[i] = math.Exp(m.logEval(y) - maxv)
		z += ws[i]
	}
	for i, m := range p {
		w := ws[i] / z
		for j, e := range m.Exp {
			grad[j] += scale * w * e
		}
	}
}

// Program is a GP in the paper's form: maximize a monomial objective over
// positive variables subject to posynomial upper bounds.
type Program struct {
	nVars     int
	objective *Monomial
	bounds    []Posynomial
}

// New creates a program over nVars positive variables.
func New(nVars int) (*Program, error) {
	if nVars <= 0 {
		return nil, fmt.Errorf("%w: %d variables", ErrBadProgram, nVars)
	}
	return &Program{nVars: nVars}, nil
}

// MaximizeMonomial sets the objective.
func (p *Program) MaximizeMonomial(m Monomial) error {
	if err := m.Validate(p.nVars); err != nil {
		return err
	}
	p.objective = &m
	return nil
}

// AddUpperBound adds the constraint pos(x) ≤ 1.
func (p *Program) AddUpperBound(pos Posynomial) error {
	if err := pos.Validate(p.nVars); err != nil {
		return err
	}
	p.bounds = append(p.bounds, append(Posynomial(nil), pos...))
	return nil
}

// AddLinearCapacity adds Σ_i coeff_i·x_i ≤ capacity as a posynomial bound.
func (p *Program) AddLinearCapacity(coeff []float64, capacity float64) error {
	if len(coeff) != p.nVars {
		return fmt.Errorf("%w: %d coefficients for %d variables", ErrBadProgram, len(coeff), p.nVars)
	}
	if capacity <= 0 {
		return fmt.Errorf("%w: capacity %v", ErrBadProgram, capacity)
	}
	var pos Posynomial
	for i, c := range coeff {
		if c == 0 {
			continue
		}
		if c < 0 {
			return fmt.Errorf("%w: negative coefficient %v (posynomials need positive terms)", ErrBadProgram, c)
		}
		exp := make([]float64, p.nVars)
		exp[i] = 1
		pos = append(pos, Monomial{Coeff: c / capacity, Exp: exp})
	}
	if len(pos) == 0 {
		return fmt.Errorf("%w: all-zero capacity row", ErrBadProgram)
	}
	return p.AddUpperBound(pos)
}

// Config tunes Solve.
type Config struct {
	// MaxIters bounds iterations (default 40000).
	MaxIters int
	// Step is the base step size (default 0.1); decays as Step/√t.
	Step float64
	// Penalty is the constraint penalty weight (default 100), annealed
	// upward 10× across the run.
	Penalty float64
	// Tol is the feasibility tolerance on log-sum-exp values (default
	// 1e-6).
	Tol float64
	// Init optionally sets the starting point (positive values).
	Init []float64
}

// Report describes a solve.
type Report struct {
	Iters        int
	Objective    float64
	MaxViolation float64
	Converged    bool
}

// Solve maximizes the objective, returning the variable assignment.
func (p *Program) Solve(cfg Config) ([]float64, *Report, error) {
	if p.objective == nil {
		return nil, nil, fmt.Errorf("%w: no objective", ErrBadProgram)
	}
	if len(p.bounds) == 0 {
		return nil, nil, fmt.Errorf("%w: unbounded (no constraints)", ErrBadProgram)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 40000
	}
	if cfg.Step <= 0 {
		cfg.Step = 0.1
	}
	if cfg.Penalty <= 0 {
		cfg.Penalty = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	n := p.nVars
	y := make([]float64, n)
	if cfg.Init != nil {
		if len(cfg.Init) != n {
			return nil, nil, fmt.Errorf("%w: init has %d entries, want %d", ErrBadProgram, len(cfg.Init), n)
		}
		for i, v := range cfg.Init {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("%w: init[%d] = %v must be positive", ErrBadProgram, i, v)
			}
			y[i] = math.Log(v)
		}
	}
	grad := make([]float64, n)
	best := append([]float64(nil), y...)
	bestObj := math.Inf(-1)
	bestViol := math.Inf(1)
	evalAt := func(y []float64) (obj, viol float64) {
		obj = p.objective.logEval(y)
		for _, b := range p.bounds {
			if v := b.logSumExp(y); v > viol {
				viol = v
			}
		}
		return obj, viol
	}
	consider := func(y []float64) {
		obj, viol := evalAt(y)
		if viol <= cfg.Tol {
			if bestViol > cfg.Tol || obj > bestObj {
				copy(best, y)
				bestObj, bestViol = obj, viol
			}
		} else if bestViol > cfg.Tol && viol < bestViol {
			copy(best, y)
			bestObj, bestViol = obj, viol
		}
	}
	consider(y)
	iters := 0
	for t := 0; t < cfg.MaxIters; t++ {
		iters = t + 1
		copy(grad, p.objective.Exp)
		rho := cfg.Penalty * (1 + 9*float64(t)/float64(cfg.MaxIters))
		for _, b := range p.bounds {
			if v := b.logSumExp(y); v > 0 {
				b.lseGrad(y, -rho, grad)
			}
		}
		// Scale-free diminishing step.
		var gmax float64
		for _, g := range grad {
			if a := math.Abs(g); a > gmax {
				gmax = a
			}
		}
		if gmax == 0 {
			break
		}
		step := cfg.Step / math.Sqrt(float64(t+1)) / gmax
		for i := range y {
			y[i] += step * grad[i]
		}
		if t%25 == 0 || t == cfg.MaxIters-1 {
			consider(y)
		}
	}
	obj, viol := evalAt(best)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Exp(best[i])
	}
	rep := &Report{Iters: iters, Objective: math.Exp(obj), MaxViolation: viol, Converged: viol <= cfg.Tol}
	if !rep.Converged {
		return x, rep, fmt.Errorf("%w: max log violation %.3g after %d iterations", ErrNoConvergence, viol, iters)
	}
	return x, rep, nil
}
