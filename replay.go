package ref

import (
	"io"

	"ref/internal/obs"
	"ref/internal/replay"
)

// Trace replay — the deterministic discrete-event regression harness
// (cmd/refreplay). Tenant arrival/departure/re-declaration traces, either
// synthesized by seeded scenario generators or loaded from a ref/trace/v1
// file, are driven through the real allocation server on a fake clock;
// every published snapshot is re-audited with the §4 oracles and the
// online invariants (epoch monotonicity, delta-read consistency,
// Equation 13 differential, sampled-audit parity) are checked inline.
// See internal/replay for the full contract.

// TraceSchema identifies the ref/trace/v1 trace wire format.
const TraceSchema = replay.TraceSchema

// ReplayTrace is a full trace document: capacities plus the event log.
type ReplayTrace = replay.Trace

// ReplayEvent is one tenant mutation at a simulated tick.
type ReplayEvent = replay.Event

// ReplayOptions configures a replay run beyond what the trace fixes.
type ReplayOptions = replay.Options

// ReplayResult is one replay's outcome: per-epoch snapshot digests, the
// run digest, and every invariant violation (empty = pass).
type ReplayResult = replay.Result

// ReplayScenarioConfig sizes a generated scenario.
type ReplayScenarioConfig = replay.ScenarioConfig

// ReplayRecord is one replay's summary inside a run manifest (the
// `replay` section CI jq-asserts); pass it to RunManifest.RecordReplay.
type ReplayRecord = obs.ReplayScenario

// ReplayScenarios lists the built-in scenario names in stable order.
func ReplayScenarios() []string { return replay.Scenarios() }

// GenerateReplayScenario synthesizes a built-in scenario trace; the
// result is a pure function of (name, config).
func GenerateReplayScenario(name string, cfg ReplayScenarioConfig) (*ReplayTrace, error) {
	return replay.GenerateScenario(name, cfg)
}

// DecodeReplayTrace parses and validates a ref/trace/v1 document (single
// JSON object or JSONL).
func DecodeReplayTrace(r io.Reader) (*ReplayTrace, error) { return replay.DecodeTrace(r) }

// RunReplay replays a trace through a fresh allocation server with the
// full inline invariant suite.
func RunReplay(t *ReplayTrace, opts ReplayOptions) (*ReplayResult, error) {
	return replay.Run(t, opts)
}

// RunReplayScenario generates and replays a built-in scenario.
func RunReplayScenario(name string, cfg ReplayScenarioConfig, opts ReplayOptions) (*ReplayResult, error) {
	return replay.RunScenario(name, cfg, opts)
}
