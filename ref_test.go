package ref_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ref"
)

// TestQuickstart exercises the doc-comment example end to end.
func TestQuickstart(t *testing.T) {
	u1 := ref.MustNewUtility(1, 0.6, 0.4)
	u2 := ref.MustNewUtility(1, 0.2, 0.8)
	agents := []ref.Agent{
		{Name: "user1", Utility: u1},
		{Name: "user2", Utility: u2},
	}
	capacity := []float64{24, 12}
	alloc, err := ref.Allocate(agents, capacity)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{18, 4}, {6, 8}}
	for i := range want {
		for r := range want[i] {
			if math.Abs(alloc.X[i][r]-want[i][r]) > 1e-9 {
				t.Errorf("X[%d][%d] = %v, want %v", i, r, alloc.X[i][r], want[i][r])
			}
		}
	}
	rep, err := ref.Audit(agents, capacity, alloc.X, ref.DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.All() {
		t.Errorf("REF allocation fails audit: %v", rep)
	}
}

func TestMechanismZoo(t *testing.T) {
	ms := ref.Mechanisms()
	if len(ms) != 4 {
		t.Fatalf("got %d mechanisms", len(ms))
	}
	agents := []ref.Agent{
		{Name: "a", Utility: ref.MustNewUtility(1, 0.7, 0.3)},
		{Name: "b", Utility: ref.MustNewUtility(1, 0.3, 0.7)},
	}
	capacity := []float64{10, 10}
	for _, m := range ms {
		x, err := m.Allocate(agents, capacity)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !x.WithinCapacity(capacity, 1e-6) {
			t.Errorf("%s: capacity violated", m.Name())
		}
		wt, err := ref.WeightedThroughput(agents, capacity, x)
		if err != nil {
			t.Fatal(err)
		}
		if wt <= 0 || wt > 2.0001 {
			t.Errorf("%s: weighted throughput %v", m.Name(), wt)
		}
	}
	if ref.EqualSplit().Name() == "" {
		t.Error("EqualSplit unnamed")
	}
}

func TestCEEIFacade(t *testing.T) {
	agents := []ref.Agent{
		{Utility: ref.MustNewUtility(1, 0.6, 0.4)},
		{Utility: ref.MustNewUtility(1, 0.2, 0.8)},
	}
	ceei, err := ref.ComputeCEEI(agents, []float64{24, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(ceei.Prices) != 2 || ceei.Prices[0] <= 0 {
		t.Errorf("prices = %v", ceei.Prices)
	}
}

func TestFitFacade(t *testing.T) {
	truth := ref.MustNewUtility(1, 0.5, 0.5)
	var p ref.Profile
	for _, x := range []float64{1, 2, 4} {
		for _, y := range []float64{1, 3, 9} {
			p.Add([]float64{x, y}, truth.Eval([]float64{x, y}))
		}
	}
	res, err := ref.FitCobbDouglas(&p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utility.Alpha[0]-0.5) > 1e-9 {
		t.Errorf("fitted alpha = %v", res.Utility.Alpha)
	}
	f, err := ref.NewOnlineFitter(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Utility().Alpha[0] != 0.5 {
		t.Error("online prior wrong")
	}
}

func TestLeontiefAndDRFFacade(t *testing.T) {
	a, err := ref.NewLeontief(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.NewLeontief(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := ref.DRF([]ref.LeontiefUtility{a, b}, []float64{9, 18})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0][0]-3) > 1e-9 {
		t.Errorf("DRF alloc = %v", alloc)
	}
}

func TestEdgeworthFacade(t *testing.T) {
	box, err := ref.NewEdgeworthBox(ref.MustNewUtility(1, 0.6, 0.4), ref.MustNewUtility(1, 0.2, 0.8), 24, 12)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := box.FairSet(100, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Error("empty fair set")
	}
}

func TestWorkloadCatalogFacade(t *testing.T) {
	if got := len(ref.Workloads()); got != 28 {
		t.Errorf("catalog size = %d", got)
	}
	w, err := ref.LookupWorkload("dedup")
	if err != nil {
		t.Fatal(err)
	}
	if w.Config.Name != "dedup" {
		t.Errorf("lookup returned %q", w.Config.Name)
	}
	if len(ref.Table2()) != 10 {
		t.Error("Table 2 size wrong")
	}
	if len(ref.LLCSizes()) != 5 || len(ref.Bandwidths()) != 5 {
		t.Error("Table 1 ladders wrong")
	}
}

func TestSimulatorFacade(t *testing.T) {
	w, err := ref.LookupWorkload("radiosity")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.RunWorkload(w.Config, ref.DefaultPlatform(512<<10, 6.4), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 {
		t.Errorf("IPC = %v", res.IPC())
	}
}

func TestSchedulingFacade(t *testing.T) {
	w, err := ref.NewWFQ([]float64{3, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := w.RunBacklogged(2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shares[0]-0.75) > 0.02 {
		t.Errorf("WFQ share = %v", shares[0])
	}
	tickets, err := ref.TicketsFromShares([]float64{0.75, 0.25}, 100)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ref.NewLottery(tickets, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := l.MaxShareError(50000); e > 0.02 {
		t.Errorf("lottery error = %v", e)
	}
}

func TestSPLFacade(t *testing.T) {
	br, err := ref.BestResponse([]float64{0.5, 0.5}, []float64{30, 30})
	if err != nil {
		t.Fatal(err)
	}
	if br.Deviation > 0.01 {
		t.Errorf("large-system deviation = %v", br.Deviation)
	}
	pts, err := ref.DeviationSweep([]int{2, 16}, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Errorf("sweep points = %d", len(pts))
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	exps := ref.Experiments()
	if len(exps) < 19 {
		t.Fatalf("only %d experiments", len(exps))
	}
	var buf bytes.Buffer
	if err := ref.RunExperiment("tab1", 0, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("tab1 output wrong")
	}
	if err := ref.RunExperiment("nonesuch", 0, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPreferenceConstants(t *testing.T) {
	u := ref.MustNewUtility(1, 1, 1)
	if got := u.Compare([]float64{2, 2}, []float64{1, 1}); got != ref.Better {
		t.Errorf("Compare = %v", got)
	}
	if got := u.Compare([]float64{1, 1}, []float64{2, 2}); got != ref.Worse {
		t.Errorf("Compare = %v", got)
	}
	if got := u.Compare([]float64{1, 4}, []float64{2, 2}); got != ref.Indifferent {
		t.Errorf("Compare = %v", got)
	}
}

func TestProfilePersistenceFacade(t *testing.T) {
	truth := ref.MustNewUtility(1, 0.5, 0.5)
	var p ref.Profile
	for _, x := range []float64{1, 2, 4} {
		for _, y := range []float64{1, 3, 9} {
			p.Add([]float64{x, y}, truth.Eval([]float64{x, y}))
		}
	}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ref.ReadProfileCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 9 {
		t.Fatalf("round trip lost samples: %d", len(got.Samples))
	}
	cv, err := ref.CrossValidateFit(got)
	if err != nil {
		t.Fatal(err)
	}
	if cv.R2 < 0.999 {
		t.Errorf("CV R2 = %v on exact data", cv.R2)
	}
}

func TestWindowedFitterFacade(t *testing.T) {
	f, err := ref.NewWindowedFitter(2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		x := float64(i%7 + 1)
		if err := f.Observe([]float64{x, 8 - x}, x*(8-x)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Observations() != 10 {
		t.Errorf("window kept %d observations", f.Observations())
	}
}

func TestEgalitarianFairFacade(t *testing.T) {
	agents := []ref.Agent{
		{Utility: ref.MustNewUtility(1, 0.7, 0.3)},
		{Utility: ref.MustNewUtility(1, 0.3, 0.7)},
	}
	capacity := []float64{10, 10}
	x, err := ref.EgalitarianFair().Allocate(agents, capacity)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ref.Audit(agents, capacity, x, ref.Tolerance{Rel: 5e-3, MRS: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SI.Satisfied || !rep.EF.Satisfied {
		t.Errorf("EgalitarianFair violates SI/EF: %v", rep)
	}
}

func TestSharedBusFacade(t *testing.T) {
	res, err := ref.RunSharedBusWFQ(ref.DefaultDRAMConfig(3.2), []float64{4, 40}, []float64{0.3, 0.7}, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Share(0)+res.Share(1) < 0.99 {
		t.Errorf("shares don't sum: %v", res)
	}
	if _, err := ref.RunSharedBusFCFS(ref.DefaultDRAMConfig(3.2), []float64{4}, 50000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGPFacade(t *testing.T) {
	p, err := ref.NewGPProgram(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MaximizeMonomial(ref.GPMonomial{Coeff: 1, Exp: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLinearCapacity([]float64{1}, 7); err != nil {
		t.Fatal(err)
	}
	x, rep, err := p.Solve(ref.GPConfig{})
	if err != nil {
		t.Fatalf("%v (%+v)", err, rep)
	}
	if math.Abs(x[0]-7) > 0.05 {
		t.Errorf("x = %v, want 7", x[0])
	}
}

func TestCoRunFacade(t *testing.T) {
	w1, err := ref.LookupWorkload("radiosity")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ref.LookupWorkload("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	llc := ref.CacheConfig{SizeBytes: 1 << 20, Ways: 8, BlockBytes: 64, HitLatency: 20}
	ws := []ref.WorkloadConfig{w1.Config, w2.Config}
	managed, err := ref.CoRun(ws, llc, 12.8, [][2]float64{{6.4, 512 << 10}, {6.4, 512 << 10}}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	unmanaged, err := ref.UnmanagedCoRun(ws, llc, 12.8, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(managed.Agents) != 2 || len(unmanaged.Agents) != 2 {
		t.Fatal("agent counts wrong")
	}
	for i := 0; i < 2; i++ {
		if managed.Agents[i].IPC() <= 0 || unmanaged.Agents[i].IPC() <= 0 {
			t.Errorf("agent %d zero IPC", i)
		}
	}
}
