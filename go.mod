module ref

go 1.22
