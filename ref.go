// Package ref is the public API of the REF reproduction — Resource
// Elasticity Fairness with Sharing Incentives for Multiprocessors
// (Zahedi & Lee, ASPLOS 2014).
//
// REF allocates multiple hardware resources (the case study uses last-level
// cache capacity and memory bandwidth) among agents whose preferences are
// Cobb-Douglas utility functions u(x) = α₀·∏ x_r^{α_r}. The proportional
// elasticity mechanism rescales each agent's elasticities to sum to one and
// hands out each resource in proportion to rescaled elasticity; the
// resulting allocation provides sharing incentives (SI), envy-freeness
// (EF), Pareto efficiency (PE), and strategy-proofness in the large (SPL).
//
// The package re-exports, from the internal implementation:
//
//   - Cobb-Douglas utilities, Leontief baselines, and profile fitting
//     (NewUtility, FitCobbDouglas, ...);
//   - the REF mechanism and the mechanism zoo the paper evaluates against
//     (Allocate, Mechanisms, EqualSlowdown, ...);
//   - fairness auditing (Audit, SharingIncentives, ...) and Edgeworth-box
//     geometry (NewEdgeworthBox);
//   - the full platform simulator standing in for MARSSx86 + DRAMSim2
//     (SweepWorkload, Workloads, ...);
//   - strategy-proofness analysis (BestResponse, DeviationSweep);
//   - every paper experiment by ID (Experiments, RunExperiment).
//
// A two-agent quickstart:
//
//	u1 := ref.MustNewUtility(1, 0.6, 0.4) // bandwidth-leaning
//	u2 := ref.MustNewUtility(1, 0.2, 0.8) // cache-leaning
//	alloc, err := ref.Allocate([]ref.Agent{
//		{Name: "user1", Utility: u1},
//		{Name: "user2", Utility: u2},
//	}, []float64{24, 12}) // 24 GB/s, 12 MB
//
// yields user1 = (18 GB/s, 4 MB), user2 = (6 GB/s, 8 MB) — the paper's §4.1
// worked example.
package ref

import (
	"io"

	"ref/internal/cobb"
	"ref/internal/core"
	"ref/internal/fair"
	"ref/internal/fit"
	"ref/internal/leontief"
	"ref/internal/opt"
)

// Utility is a Cobb-Douglas utility function u(x) = Alpha0·∏ x_r^Alpha[r].
type Utility = cobb.Utility

// Preference orders two allocations from an agent's point of view.
type Preference = cobb.Preference

// Preference relation values.
const (
	Worse       = cobb.Worse
	Indifferent = cobb.Indifferent
	Better      = cobb.Better
)

// NewUtility validates and constructs a Cobb-Douglas utility.
func NewUtility(alpha0 float64, alpha ...float64) (Utility, error) {
	return cobb.New(alpha0, alpha...)
}

// MustNewUtility is NewUtility but panics on invalid parameters.
func MustNewUtility(alpha0 float64, alpha ...float64) Utility {
	return cobb.MustNew(alpha0, alpha...)
}

// LeontiefUtility is the perfect-complements baseline u = min_r x_r/d_r.
type LeontiefUtility = leontief.Utility

// NewLeontief validates and constructs a Leontief utility from a demand
// vector.
func NewLeontief(demand ...float64) (LeontiefUtility, error) {
	return leontief.New(demand...)
}

// DRF computes the Dominant Resource Fairness allocation for Leontief
// agents — the related-work baseline the paper contrasts with REF.
func DRF(agents []LeontiefUtility, capacity []float64) ([][]float64, error) {
	return leontief.DRF(agents, capacity)
}

// Agent pairs a name with a Cobb-Douglas utility.
type Agent = core.Agent

// Allocation is the outcome of the proportional elasticity mechanism.
type Allocation = core.Allocation

// Alloc is an agents × resources allocation matrix.
type Alloc = opt.Alloc

// Allocate runs the REF proportional elasticity mechanism (Equation 13).
func Allocate(agents []Agent, capacity []float64) (*Allocation, error) {
	return core.Allocate(agents, capacity)
}

// CEEI is the Competitive Equilibrium from Equal Incomes equivalent to the
// REF allocation (§4.2): market-clearing prices, equal budgets, and demands
// that coincide with Equation 13.
type CEEI = core.CEEI

// ComputeCEEI builds the CEEI for the economy, exposing the equivalence the
// fairness proof rests on.
func ComputeCEEI(agents []Agent, capacity []float64) (*CEEI, error) {
	return core.ComputeCEEI(agents, capacity)
}

// Profile is a set of (allocation, performance) observations for one agent.
type Profile = fit.Profile

// FitResult is a fitted Cobb-Douglas model with diagnostics (R², RMSLE).
type FitResult = fit.Result

// CrossValidation summarizes leave-one-out validation of a fit.
type CrossValidation = fit.CVResult

// CrossValidateFit reports out-of-sample error of the Cobb-Douglas fit.
func CrossValidateFit(p *Profile) (*CrossValidation, error) {
	return fit.CrossValidate(p)
}

// ReadProfileCSV parses a profile saved with Profile.WriteCSV.
func ReadProfileCSV(r io.Reader) (*Profile, error) {
	return fit.ReadCSV(r)
}

// FitCobbDouglas fits u = α₀·∏ x^α to a performance profile by least
// squares on the log-linearized model (Equation 16).
func FitCobbDouglas(p *Profile) (*FitResult, error) {
	return fit.CobbDouglas(p)
}

// LeontiefFitResult is a best-effort Leontief fit of a profile.
type LeontiefFitResult = fit.LeontiefResult

// FitLeontief fits u ≈ scale·min_r(x_r/d_r) by grid search over demand
// ratios — the expensive, poorly-fitting alternative §2 of the paper
// contrasts with Cobb-Douglas regression.
func FitLeontief(p *Profile, gridPerDim int) (*LeontiefFitResult, error) {
	return fit.Leontief(p, gridPerDim)
}

// OnlineFitter adapts a utility estimate as profiling observations arrive
// (§4.4's on-line profiling loop), starting from the uniform prior
// u = ∏ x^(1/R).
type OnlineFitter = fit.OnlineFitter

// NewOnlineFitter returns a fitter over the given number of resources that
// refits after every refitEach observations.
func NewOnlineFitter(resources, refitEach int) (*OnlineFitter, error) {
	return fit.NewOnlineFitter(resources, refitEach)
}

// NewWindowedFitter is NewOnlineFitter with a sliding observation window so
// the estimate tracks phase-changing workloads.
func NewWindowedFitter(resources, refitEach, window int) (*OnlineFitter, error) {
	return fit.NewWindowedFitter(resources, refitEach, window)
}

// FairnessReport is a combined SI/EF/PE audit of one allocation.
type FairnessReport = fair.Report

// Tolerance bundles the numeric slack used when auditing allocations.
type Tolerance = fair.Tolerance

// DefaultTolerance is appropriate for allocations computed in float64.
func DefaultTolerance() Tolerance { return fair.DefaultTolerance() }

// Audit checks sharing incentives, envy-freeness, and Pareto efficiency of
// an allocation for the given agents.
func Audit(agents []Agent, capacity []float64, x Alloc, tol Tolerance) (FairnessReport, error) {
	utils := make([]cobb.Utility, len(agents))
	for i, a := range agents {
		utils[i] = a.Utility
	}
	return fair.Audit(utils, capacity, x, tol)
}

// EdgeworthBox is the two-agent, two-resource geometry of Figures 1–7:
// envy-free regions, the contract curve, and the fair allocation set.
type EdgeworthBox = fair.Box

// NewEdgeworthBox validates and constructs an Edgeworth box.
func NewEdgeworthBox(u1, u2 Utility, capX, capY float64) (*EdgeworthBox, error) {
	return fair.NewBox(u1, u2, capX, capY)
}
