// Scheduling demonstrates §4.4's enforcement story: the REF mechanism
// computes proportional shares, and existing schedulers enforce them. The
// bandwidth shares are handed to a weighted fair queuing server and the
// compute shares to a lottery scheduler; both converge to the REF targets.
package main

import (
	"fmt"
	"log"

	"ref"
)

func main() {
	// Three co-located services with different resource appetites share
	// 24 GB/s of bandwidth and CPU time.
	agents := []ref.Agent{
		{Name: "web", Utility: ref.MustNewUtility(1, 0.3, 0.7)},       // compute-leaning
		{Name: "analytics", Utility: ref.MustNewUtility(1, 0.8, 0.2)}, // bandwidth-hungry
		{Name: "cache", Utility: ref.MustNewUtility(1, 0.5, 0.5)},     // balanced
	}
	capacity := []float64{24, 3.0} // GB/s bandwidth, CPU cores
	alloc, err := ref.Allocate(agents, capacity)
	if err != nil {
		log.Fatalf("allocate: %v", err)
	}
	fmt.Println("REF shares:")
	bwShares := make([]float64, len(agents))
	cpuShares := make([]float64, len(agents))
	for i, a := range agents {
		bwShares[i] = alloc.X[i][0] / capacity[0]
		cpuShares[i] = alloc.X[i][1] / capacity[1]
		fmt.Printf("  %-10s bandwidth %5.1f%%  cpu %5.1f%%\n", a.Name, 100*bwShares[i], 100*cpuShares[i])
	}

	// Enforce bandwidth with weighted fair queuing.
	wfq, err := ref.NewWFQ(bwShares, capacity[0])
	if err != nil {
		log.Fatalf("wfq: %v", err)
	}
	achieved, err := wfq.RunBacklogged(30000)
	if err != nil {
		log.Fatalf("wfq run: %v", err)
	}
	fmt.Println("WFQ-enforced bandwidth shares after 30k backlogged requests:")
	for i, a := range agents {
		fmt.Printf("  %-10s target %5.1f%%  achieved %5.1f%%\n", a.Name, 100*bwShares[i], 100*achieved[i])
	}

	// Enforce CPU time with lottery scheduling.
	tickets, err := ref.TicketsFromShares(cpuShares, 1000)
	if err != nil {
		log.Fatalf("tickets: %v", err)
	}
	lot, err := ref.NewLottery(tickets, 2014)
	if err != nil {
		log.Fatalf("lottery: %v", err)
	}
	worst := lot.MaxShareError(500000)
	fmt.Printf("lottery-enforced CPU shares after 500k quanta: worst |achieved−target| = %.4f\n", worst)
	got := lot.AchievedShares()
	for i, a := range agents {
		fmt.Printf("  %-10s target %5.1f%%  achieved %5.1f%%\n", a.Name, 100*cpuShares[i], 100*got[i])
	}
}
