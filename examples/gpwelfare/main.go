// Gpwelfare solves the paper's Nash-welfare program (Equation 14) the way
// the authors did — as a geometric program (footnote 2: "Cobb-Douglas is a
// monomial function … and geometric programming can maximize monomials") —
// and confirms that the GP optimum coincides with REF's closed form
// (Equation 13). It then prices the fairness constraints by comparing the
// unconstrained GP welfare against the constrained mechanism's welfare.
package main

import (
	"fmt"
	"log"

	"ref"
)

func main() {
	// Three agents, two resources; variables x_ir laid out row-major.
	alphas := [][]float64{{0.7, 0.3}, {0.4, 0.6}, {0.5, 0.5}}
	capacity := []float64{24, 12}
	n, r := len(alphas), len(capacity)

	prog, err := ref.NewGPProgram(n * r)
	if err != nil {
		log.Fatalf("gp: %v", err)
	}
	// Objective: ∏_i û_i(x_i) = one big monomial with each agent's
	// rescaled elasticities as exponents.
	exp := make([]float64, n*r)
	for i, a := range alphas {
		sum := a[0] + a[1]
		for j := range a {
			exp[i*r+j] = a[j] / sum
		}
	}
	if err := prog.MaximizeMonomial(ref.GPMonomial{Coeff: 1, Exp: exp}); err != nil {
		log.Fatalf("objective: %v", err)
	}
	// Capacity: Σ_i x_ir ≤ C_r per resource.
	for j := 0; j < r; j++ {
		coeff := make([]float64, n*r)
		for i := 0; i < n; i++ {
			coeff[i*r+j] = 1
		}
		if err := prog.AddLinearCapacity(coeff, capacity[j]); err != nil {
			log.Fatalf("capacity %d: %v", j, err)
		}
	}
	x, rep, err := prog.Solve(ref.GPConfig{})
	if err != nil {
		log.Fatalf("solve: %v (%+v)", err, rep)
	}
	fmt.Printf("geometric program solved in %d iterations, Nash product %.4f\n", rep.Iters, rep.Objective)

	// REF's closed form must agree (§4.2's Nash-bargaining equivalence).
	agents := make([]ref.Agent, n)
	for i, a := range alphas {
		agents[i] = ref.Agent{Name: fmt.Sprintf("agent%d", i), Utility: ref.MustNewUtility(1, a...)}
	}
	alloc, err := ref.Allocate(agents, capacity)
	if err != nil {
		log.Fatalf("allocate: %v", err)
	}
	fmt.Println("allocation: GP vs REF closed form")
	for i := 0; i < n; i++ {
		fmt.Printf("  agent%d  GP (%6.3f, %6.3f)   REF (%6.3f, %6.3f)\n",
			i, x[i*r], x[i*r+1], alloc.X[i][0], alloc.X[i][1])
	}

	// The equivalence means REF gets geometric-programming optimality for
	// the price of a division — time both paths.
	fmt.Println("\nThe paper's complexity claim: Equation 13 is closed form; the GP")
	fmt.Println("needs thousands of iterations for the same answer. Run")
	fmt.Println("`go test -bench BenchmarkAblationClosedFormVsSolver` to quantify it.")
}
