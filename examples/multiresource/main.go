// Multiresource demonstrates the paper's stated extension (§1: "In future,
// the mechanism can support additional resources, such as the number of
// processor cores"): REF allocating three resources — processor cores,
// last-level cache, and memory bandwidth — among four agents. Every piece
// of the library is R-generic, so the three-resource economy gets the same
// closed form, the same SI/EF/PE guarantees, and the same CEEI equivalence
// as the two-resource case study.
package main

import (
	"fmt"
	"log"

	"ref"
)

func main() {
	// Elasticities over (cores, cache MB, bandwidth GB/s).
	agents := []ref.Agent{
		// A thread-hungry build farm: cores dominate.
		{Name: "build", Utility: ref.MustNewUtility(1, 0.70, 0.10, 0.20)},
		// An in-memory KV store: cache dominates.
		{Name: "kvstore", Utility: ref.MustNewUtility(1, 0.15, 0.65, 0.20)},
		// A streaming analytics job: bandwidth dominates.
		{Name: "stream", Utility: ref.MustNewUtility(1, 0.20, 0.10, 0.70)},
		// A balanced web tier.
		{Name: "web", Utility: ref.MustNewUtility(1, 0.34, 0.33, 0.33)},
	}
	capacity := []float64{16, 12, 24} // 16 cores, 12 MB, 24 GB/s

	alloc, err := ref.Allocate(agents, capacity)
	if err != nil {
		log.Fatalf("allocate: %v", err)
	}
	fmt.Println("three-resource REF allocation (cores, cache MB, bandwidth GB/s):")
	for i, a := range agents {
		fmt.Printf("  %-8s %5.2f cores  %5.2f MB  %5.2f GB/s   U=%.3f\n",
			a.Name, alloc.X[i][0], alloc.X[i][1], alloc.X[i][2], alloc.NormalizedUtility(i))
	}

	rep, err := ref.Audit(agents, capacity, alloc.X, ref.DefaultTolerance())
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("properties: %s\n", rep)

	// The CEEI equivalence survives the extra dimension.
	ceei, err := ref.ComputeCEEI(agents, capacity)
	if err != nil {
		log.Fatalf("ceei: %v", err)
	}
	fmt.Printf("CEEI prices: %.4f /core, %.4f /MB, %.4f /GBps\n",
		ceei.Prices[0], ceei.Prices[1], ceei.Prices[2])

	// And so does strategy-proofness in the large: a strategic agent in a
	// 48-agent version of this economy gains nothing by lying over three
	// resources.
	truth := agents[0].Utility.Rescaled().Alpha
	otherSums := []float64{16, 14, 17} // Σ of 47 other agents' rescaled α per resource
	br, err := ref.BestResponse(truth, otherSums)
	if err != nil {
		log.Fatalf("best response: %v", err)
	}
	fmt.Printf("strategic 'build' in a 48-agent system: deviation %.5f, gain %.5f%%\n",
		br.Deviation, 100*br.Gain)

	// Enforce the core shares with lottery scheduling, as §4.4 suggests
	// for time-multiplexed resources.
	coreShares := make([]float64, len(agents))
	for i := range agents {
		coreShares[i] = alloc.X[i][0] / capacity[0]
	}
	tickets, err := ref.TicketsFromShares(coreShares, 1<<12)
	if err != nil {
		log.Fatalf("tickets: %v", err)
	}
	lot, err := ref.NewLottery(tickets, 3)
	if err != nil {
		log.Fatalf("lottery: %v", err)
	}
	fmt.Printf("lottery enforcement of core shares: worst error %.4f after 200k quanta\n",
		lot.MaxShareError(200000))
}
