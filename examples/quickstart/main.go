// Quickstart reproduces the paper's §3–§4 running example with the public
// API: two users with Cobb-Douglas preferences share 24 GB/s of memory
// bandwidth and 12 MB of cache; REF's proportional elasticity mechanism
// computes each user's fair share, and the allocation is audited for
// sharing incentives, envy-freeness, and Pareto efficiency.
package main

import (
	"fmt"
	"log"

	"ref"
)

func main() {
	// User 1 runs bursty, low-reuse code (bandwidth-leaning: α_mem = 0.6);
	// user 2 re-uses its cache well (cache-leaning: α_cache = 0.8).
	agents := []ref.Agent{
		{Name: "user1", Utility: ref.MustNewUtility(1, 0.6, 0.4)},
		{Name: "user2", Utility: ref.MustNewUtility(1, 0.2, 0.8)},
	}
	capacity := []float64{24, 12} // 24 GB/s bandwidth, 12 MB cache

	alloc, err := ref.Allocate(agents, capacity)
	if err != nil {
		log.Fatalf("allocate: %v", err)
	}
	fmt.Println("REF proportional elasticity allocation:")
	for i, a := range agents {
		fmt.Printf("  %-6s → %5.1f GB/s, %4.1f MB   u=%.3f  U=u(x)/u(C)=%.3f\n",
			a.Name, alloc.X[i][0], alloc.X[i][1], alloc.Utility(i), alloc.NormalizedUtility(i))
	}

	// Audit the game-theoretic properties.
	rep, err := ref.Audit(agents, capacity, alloc.X, ref.DefaultTolerance())
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("properties: %s\n", rep)

	// The allocation is simultaneously a competitive equilibrium from
	// equal incomes: every agent could afford exactly its bundle at the
	// market-clearing prices, starting from an equal endowment.
	ceei, err := ref.ComputeCEEI(agents, capacity)
	if err != nil {
		log.Fatalf("ceei: %v", err)
	}
	fmt.Printf("CEEI prices: bandwidth=%.4f /GBps, cache=%.4f /MB\n", ceei.Prices[0], ceei.Prices[1])
	fmt.Printf("CEEI demands match REF: user1 (%.1f, %.1f), user2 (%.1f, %.1f)\n",
		ceei.Demands[0][0], ceei.Demands[0][1], ceei.Demands[1][0], ceei.Demands[1][1])

	// Contrast with the equal-slowdown mechanism of prior work.
	es, err := ref.EqualSlowdown().Allocate(agents, capacity)
	if err != nil {
		log.Fatalf("equal slowdown: %v", err)
	}
	esRep, err := ref.Audit(agents, capacity, es, ref.Tolerance{Rel: 1e-3, MRS: 0.02})
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("equal slowdown allocation: user1 (%.1f, %.1f), user2 (%.1f, %.1f) — properties %s\n",
		es[0][0], es[0][1], es[1][0], es[1][1], esRep)
}
