// Datacenter demonstrates the full REF pipeline at the scale §4.3 argues
// makes the mechanism strategy-proof in the large: 64 tasks on a large
// shared server. Each task is drawn from the paper's 28-benchmark catalog,
// profiled on the Table 1 grid with the platform simulator, fitted to a
// Cobb-Douglas utility, and allocated its fair share of aggregate cache and
// bandwidth. Finally one strategic task computes its optimal misreport and
// discovers that, at this scale, lying is worthless.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ref"
)

const (
	tasks      = 64
	profileAcc = 8000
)

func main() {
	// Profile and fit every catalog workload once (the expensive step;
	// memoized inside the library).
	fmt.Println("profiling 28 benchmarks over the 5×5 grid...")
	fitted, err := ref.FitAllWorkloads(profileAcc)
	if err != nil {
		log.Fatalf("fit: %v", err)
	}

	// Populate the server with 64 tasks drawn from the catalog.
	names := make([]string, 0, len(fitted))
	for _, w := range ref.Workloads() {
		names = append(names, w.Config.Name)
	}
	rng := rand.New(rand.NewSource(64))
	agents := make([]ref.Agent, tasks)
	for i := range agents {
		n := names[rng.Intn(len(names))]
		agents[i] = ref.Agent{
			Name:    fmt.Sprintf("task%02d-%s", i, n),
			Utility: fitted[n].Fit.Utility,
		}
	}

	// A four-socket server: 8× the single-socket capacity of Table 1.
	capacity := []float64{102.4, 16} // GB/s, MB
	alloc, err := ref.Allocate(agents, capacity)
	if err != nil {
		log.Fatalf("allocate: %v", err)
	}
	rep, err := ref.Audit(agents, capacity, alloc.X, ref.DefaultTolerance())
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	wt, err := ref.WeightedThroughput(agents, capacity, alloc.X)
	if err != nil {
		log.Fatalf("throughput: %v", err)
	}
	fmt.Printf("allocated %d tasks: properties %s, weighted throughput %.2f\n", tasks, rep, wt)
	for _, i := range []int{0, 1, tasks - 1} {
		fmt.Printf("  %-22s %6.2f GB/s %6.3f MB\n", agents[i].Name, alloc.X[i][0], alloc.X[i][1])
	}

	// Strategy-proofness in the large: task 0 contemplates lying.
	truth := alloc.Rescaled[0].Alpha
	otherSums := make([]float64, len(capacity))
	for j := 1; j < tasks; j++ {
		for r, a := range alloc.Rescaled[j].Alpha {
			otherSums[r] += a
		}
	}
	br, err := ref.BestResponse(truth, otherSums)
	if err != nil {
		log.Fatalf("best response: %v", err)
	}
	fmt.Printf("strategic task 0: true α = (%.3f, %.3f), optimal report = (%.3f, %.3f)\n",
		truth[0], truth[1], br.Report[0], br.Report[1])
	fmt.Printf("deviation ‖α′−α‖∞ = %.5f, utility gain from lying = %.5f%%\n",
		br.Deviation, 100*br.Gain)
	if br.Gain < 1e-3 {
		fmt.Println("⇒ strategy-proof in the large: with 64 tasks, truthful reporting is (essentially) optimal")
	}
}
