// Edgeworth emits the Figure 1–7 geometry of the paper as CSV on stdout:
// the envy-free regions of both users, the contract curve (all Pareto
// efficient allocations), and the fair allocation set with and without the
// sharing-incentive constraints. Feed the CSV to any plotting tool to
// recreate the figures.
package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"os"
	"strconv"

	"ref"
)

func main() {
	u1 := ref.MustNewUtility(1, 0.6, 0.4)
	u2 := ref.MustNewUtility(1, 0.2, 0.8)
	box, err := ref.NewEdgeworthBox(u1, u2, 24, 12)
	if err != nil {
		log.Fatalf("box: %v", err)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	write := func(rec ...string) {
		if err := w.Write(rec); err != nil {
			log.Fatalf("csv: %v", err)
		}
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }

	// Region raster for Figures 2 and 7: one row per lattice cell with
	// the constraint flags.
	write("kind", "x", "y", "ef1", "ef2", "si1", "si2")
	grid, err := box.Grid(96, 48)
	if err != nil {
		log.Fatalf("grid: %v", err)
	}
	for j, row := range grid {
		y := 12 * (float64(j) + 0.5) / float64(len(grid))
		for i, c := range row {
			x := 24 * (float64(i) + 0.5) / float64(len(row))
			write("region", f(x), f(y),
				strconv.FormatBool(c.EF1), strconv.FormatBool(c.EF2),
				strconv.FormatBool(c.SI1), strconv.FormatBool(c.SI2))
		}
	}

	// Contract curve (Figure 5).
	curve, err := box.ContractCurve(200)
	if err != nil {
		log.Fatalf("contract: %v", err)
	}
	for _, p := range curve {
		write("contract", f(p.X), f(p.Y), "", "", "", "")
	}

	// Fair sets (Figures 6 and 7).
	for _, si := range []bool{false, true} {
		pts, err := box.FairSet(200, si)
		if err != nil {
			log.Fatalf("fair set: %v", err)
		}
		kind := "fair"
		if si {
			kind = "fair_si"
		}
		for _, p := range pts {
			write(kind, f(p.X), f(p.Y), "", "", "", "")
		}
	}

	// The REF allocation itself, for overlay.
	alloc, err := ref.Allocate([]ref.Agent{{Name: "u1", Utility: u1}, {Name: "u2", Utility: u2}}, []float64{24, 12})
	if err != nil {
		log.Fatalf("allocate: %v", err)
	}
	write("ref_allocation", f(alloc.X[0][0]), f(alloc.X[0][1]), "", "", "", "")
	fmt.Fprintf(os.Stderr, "wrote region raster, contract curve, fair sets, and the REF point (%.1f, %.1f)\n",
		alloc.X[0][0], alloc.X[0][1])
}
