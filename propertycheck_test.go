package ref_test

import (
	"testing"

	"ref"
)

// TestRunPropertyChecks exercises the facade end to end: a bounded run
// over every subject must execute both streams and find nothing.
func TestRunPropertyChecks(t *testing.T) {
	sum, err := ref.RunPropertyChecks(ref.PropertyCheckConfig{Trials: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.OK() {
		for _, f := range sum.Failures {
			t.Errorf("%s: %v", f.String(), f.Findings)
		}
	}
	if sum.Trials != 10 || sum.SolverTrials != 1 || sum.Checks == 0 {
		t.Errorf("unexpected summary: %+v", sum)
	}
}

// TestResolveParallelism checks the pass-through and defaulting contract.
func TestResolveParallelism(t *testing.T) {
	if got := ref.ResolveParallelism(3); got != 3 {
		t.Errorf("ResolveParallelism(3) = %d", got)
	}
	if got := ref.ResolveParallelism(0); got < 1 {
		t.Errorf("ResolveParallelism(0) = %d", got)
	}
}
