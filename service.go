package ref

import (
	"ref/internal/serve"
)

// Allocation service — REF as a long-lived daemon (cmd/refserve). Tenants
// join, leave, and re-declare Cobb-Douglas preferences over a JSON HTTP
// API; mutations are coalesced into allocation epochs that each run the
// Equation 13 mechanism once and publish an immutable, fairness-audited
// snapshot. See internal/serve for the full contract.

// ServeConfig parameterizes an allocation server.
type ServeConfig = serve.Config

// AllocationServer is the online allocation service.
type AllocationServer = serve.Server

// AllocationSnapshot is one immutable published epoch.
type AllocationSnapshot = serve.Snapshot

// ServeSchema identifies the refserve JSON wire format.
const ServeSchema = serve.Schema

// NewAllocationServer validates cfg, publishes the empty epoch-0
// snapshot, and starts the epoch loop. Close the returned server to
// drain it.
func NewAllocationServer(cfg ServeConfig) (*AllocationServer, error) {
	return serve.New(cfg)
}
