package ref

import (
	"io"

	"ref/internal/core"
	"ref/internal/hier"
	"ref/internal/serve"
)

// Allocation service — REF as a long-lived daemon (cmd/refserve). Tenants
// join, leave, and re-declare Cobb-Douglas preferences over a JSON HTTP
// API; mutations are coalesced into allocation epochs that each run the
// Equation 13 mechanism once and publish an immutable, fairness-audited
// snapshot. See internal/serve for the full contract.

// ServeConfig parameterizes an allocation server.
type ServeConfig = serve.Config

// AllocationServer is the online allocation service.
type AllocationServer = serve.Server

// AllocationSnapshot is one immutable published epoch.
type AllocationSnapshot = serve.Snapshot

// ServeSchema identifies the refserve JSON wire format.
const ServeSchema = serve.Schema

// WireAgent is one tenant on the refserve wire.
type WireAgent = serve.WireAgent

// AgentAllocation is a GET /v1/allocation?agent=X point read.
type AgentAllocation = serve.AgentAllocationResponse

// AllocationDelta is a GET /v1/allocation?since=E delta read.
type AllocationDelta = serve.DeltaResponse

// ServeError is the service's typed error envelope; the Go-level
// mutation methods (Join, Update, Leave) return it alongside the HTTP
// handlers' JSON encoding of it.
type ServeError = serve.APIError

// CodeUnknownAgent identifies a mutation or point read naming a tenant
// that is not in the agent set.
const CodeUnknownAgent = serve.CodeUnknownAgent

// MetricEpochSeconds names the allocation server's epoch-latency
// histogram on the installed metrics registry (mutation apply +
// Equation 13 + fairness audit + publish). cmd/refload reads it to
// report epoch latency percentiles.
const MetricEpochSeconds = serve.MetricEpochSeconds

// EpochFlightRecord is one epoch's flight-recorder entry: batch
// composition, per-stage apply/allocate/audit/publish durations, audit
// mode and verdict, shed count, and resummation flag.
type EpochFlightRecord = serve.EpochRecord

// FlightRecorderState is the allocation server's flight-recorder
// snapshot — the live ring plus anomaly dumps — served at
// GET /debug/ref/flightrecorder and via AllocationServer.FlightState.
type FlightRecorderState = serve.FlightSnapshot

// Hierarchical multi-tenant fairness — queue trees with quota floors,
// over-quota weights, and order-preserving reclaim (see internal/hier).
// Queues are declared at boot via ServeConfig.Queues or at runtime over
// POST /v1/queues; agents join leaf queues via WireAgent.Queue.

// DefaultQueue is the reserved leaf that holds agents joining without a
// queue; it always exists and cannot be declared or deleted.
const DefaultQueue = hier.DefaultQueue

// QueueConfig is one queue declaration: name, parent, per-resource
// quota floor, and over-quota split weight.
type QueueConfig = hier.QueueConfig

// QueueTreeConfig is a full ref/queues/v1 tree declaration, the format
// refserve's -queues file carries.
type QueueTreeConfig = hier.TreeConfig

// QueueRollup is one queue's published per-epoch state: topology,
// subtree population, fair share, final share, and reclaim volume.
type QueueRollup = serve.QueueRollup

// HierFairness is the hierarchical fairness audit of one epoch: quota
// floors, sibling-subtree sharing incentives and envy-freeness, and the
// reclaim volume moved.
type HierFairness = serve.HierFairness

// DecodeQueueTreeConfig parses and validates a ref/queues/v1 queue-tree
// declaration.
func DecodeQueueTreeConfig(r io.Reader) (*QueueTreeConfig, error) {
	return hier.DecodeConfig(r)
}

// IncrementalAllocator maintains the Equation 13 allocation under
// join/leave/update deltas in O(Δ·R) per epoch with compensated
// per-resource sums, staying within 1 ulp of a from-scratch Allocate.
// The allocation server builds its epochs on it; it is exported for
// embedders running their own epoch loops.
type IncrementalAllocator = core.IncrementalAllocator

// IncrementalOptions tunes an IncrementalAllocator's exact-resummation
// policy.
type IncrementalOptions = core.IncrementalOptions

// NewIncrementalAllocator validates the capacity vector and returns an
// empty incremental allocator.
func NewIncrementalAllocator(capacity []float64, opts IncrementalOptions) (*IncrementalAllocator, error) {
	return core.NewIncrementalAllocator(capacity, opts)
}

// NewAllocationServer validates cfg, publishes the empty epoch-0
// snapshot, and starts the epoch loop. Close the returned server to
// drain it.
func NewAllocationServer(cfg ServeConfig) (*AllocationServer, error) {
	return serve.New(cfg)
}
