package ref_test

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"ref"
)

// benchAccesses controls simulation fidelity in benchmarks. Override with
// REF_BENCH_ACCESSES for paper-scale runs (e.g. 50000); the default keeps
// `go test -bench=.` under a few minutes while preserving every shape.
func benchAccesses() int {
	if s := os.Getenv("REF_BENCH_ACCESSES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 8000
}

var logOnce sync.Map

// runExperiment regenerates one paper artifact. The first invocation per
// experiment logs the regenerated rows (visible with -v); timed iterations
// write to io.Discard.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	if _, done := logOnce.LoadOrStore(id, true); !done {
		var buf bytes.Buffer
		if err := ref.RunExperiment(id, benchAccesses(), &buf); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		b.Logf("\n%s", buf.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ref.RunExperiment(id, benchAccesses(), io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// --- One benchmark per paper table and figure ---

func BenchmarkFig1EdgeworthBox(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig2EnvyFreeRegions(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3IndifferenceCurves(b *testing.B) { runExperiment(b, "fig3") }
func BenchmarkFig4LeontiefCurves(b *testing.B)     { runExperiment(b, "fig4") }
func BenchmarkFig5ContractCurve(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6FairSet(b *testing.B)            { runExperiment(b, "fig6") }
func BenchmarkFig7SharingIncentives(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkTab1Platform(b *testing.B)           { runExperiment(b, "tab1") }
func BenchmarkFig8aGoodnessOfFit(b *testing.B)     { runExperiment(b, "fig8a") }
func BenchmarkFig8bFitCurvesHighR2(b *testing.B)   { runExperiment(b, "fig8b") }
func BenchmarkFig8cFitCurvesLowR2(b *testing.B)    { runExperiment(b, "fig8c") }
func BenchmarkFig9Elasticities(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10AllocationsCM(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11ViolationCM(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkFig12ViolationCC(b *testing.B)       { runExperiment(b, "fig12") }
func BenchmarkTab2Workloads(b *testing.B)          { runExperiment(b, "tab2") }
func BenchmarkFig13Throughput4Core(b *testing.B)   { runExperiment(b, "fig13") }
func BenchmarkFig14Throughput8Core(b *testing.B)   { runExperiment(b, "fig14") }
func BenchmarkSPL64Tasks(b *testing.B)             { runExperiment(b, "spl64") }

// Extension experiments: paper content described in prose (§4.4
// enforcement and on-line profiling) and the §1 future-work extension.

func BenchmarkExtEnforcement(b *testing.B)       { runExperiment(b, "ext-enforce") }
func BenchmarkExtThreeResources(b *testing.B)    { runExperiment(b, "ext-3r") }
func BenchmarkExtOnlineProfiling(b *testing.B)   { runExperiment(b, "ext-online") }
func BenchmarkExtEnforcedCoRun(b *testing.B)     { runExperiment(b, "ext-corun") }
func BenchmarkExtMonteCarloPenalty(b *testing.B) { runExperiment(b, "ext-mc") }
func BenchmarkExtInterference(b *testing.B)      { runExperiment(b, "ext-interference") }

// --- Parallel-engine benches: the profiling sweep serial vs parallel ---

// benchFitAll runs the full 28-workload profiling sweep at a fixed
// worker-pool width, bypassing the memo cache so every iteration does the
// real work. The serial/parallel pair quantifies the parallel engine's
// speedup (compare ns/op; see BENCH_PR1.json).
func benchFitAll(b *testing.B, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := ref.FitAllWorkloadsFresh(benchAccesses(), parallelism); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitAllSerial pins the sweep to one worker.
func BenchmarkFitAllSerial(b *testing.B) { benchFitAll(b, 1) }

// BenchmarkFitAllParallel runs the sweep at the default pool width
// ($REF_PARALLELISM or GOMAXPROCS).
func BenchmarkFitAllParallel(b *testing.B) { benchFitAll(b, 0) }

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationRescaledVsRaw quantifies what Equation 12's rescaling
// buys: allocating in proportion to *raw* elasticities (which equals
// unconstrained Nash welfare on the raw utilities) loses SI/EF on a
// measurable fraction of random economies, while REF never does. The
// violation rates are reported as custom metrics.
func BenchmarkAblationRescaledVsRaw(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var rawViolations, refViolations, economies float64
	for i := 0; i < b.N; i++ {
		n := 2 + rng.Intn(4)
		agents := make([]ref.Agent, n)
		for j := range agents {
			// Raw elasticities with heterogeneous sums — the case where
			// rescaling matters.
			agents[j] = ref.Agent{Utility: ref.MustNewUtility(1, 0.1+rng.Float64(), 0.1+rng.Float64())}
		}
		capacity := []float64{5 + rng.Float64()*40, 5 + rng.Float64()*20}
		economies++
		tol := ref.DefaultTolerance()

		refAlloc, err := ref.ProportionalElasticity().Allocate(agents, capacity)
		if err != nil {
			b.Fatal(err)
		}
		if rep, err := ref.Audit(agents, capacity, refAlloc, tol); err != nil {
			b.Fatal(err)
		} else if !rep.All() {
			refViolations++
		}

		rawAlloc, err := ref.MaxWelfareUnfair().Allocate(agents, capacity) // raw-α proportional
		if err != nil {
			b.Fatal(err)
		}
		if rep, err := ref.Audit(agents, capacity, rawAlloc, tol); err != nil {
			b.Fatal(err)
		} else if !rep.SI.Satisfied || !rep.EF.Satisfied {
			rawViolations++
		}
	}
	b.ReportMetric(rawViolations/economies, "rawViolationRate")
	b.ReportMetric(refViolations/economies, "refViolationRate")
}

// BenchmarkAblationClosedFormVsSolver times Equation 13's closed form
// against the iterative Nash-welfare solver on the same economy — the
// paper's "computationally trivial" claim made measurable.
func BenchmarkAblationClosedFormVsSolver(b *testing.B) {
	agents := []ref.Agent{
		{Utility: ref.MustNewUtility(1, 0.6, 0.4)},
		{Utility: ref.MustNewUtility(1, 0.2, 0.8)},
		{Utility: ref.MustNewUtility(1, 0.5, 0.5)},
		{Utility: ref.MustNewUtility(1, 0.8, 0.2)},
	}
	capacity := []float64{24, 12}
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ref.ProportionalElasticity().Allocate(agents, capacity); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("geometric-programming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ref.MaxWelfareFair().Allocate(agents, capacity); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCobbVsLeontief compares fit quality of the two utility
// families on substitutable (simulator-generated) performance data — the §2
// argument for Cobb-Douglas in hardware.
func BenchmarkAblationCobbVsLeontief(b *testing.B) {
	w, err := ref.LookupWorkload("raytrace")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := ref.SweepWorkload(w.Config, benchAccesses())
	if err != nil {
		b.Fatal(err)
	}
	var cdR2 float64
	b.Run("cobb-douglas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ref.FitCobbDouglas(prof)
			if err != nil {
				b.Fatal(err)
			}
			cdR2 = res.R2
		}
		b.ReportMetric(cdR2, "R2")
	})
	b.Run("leontief-grid-search", func(b *testing.B) {
		var ltR2 float64
		for i := 0; i < b.N; i++ {
			res, err := ref.FitLeontief(prof, 17)
			if err != nil {
				b.Fatal(err)
			}
			ltR2 = res.R2
		}
		b.ReportMetric(ltR2, "R2")
	})
}

// BenchmarkAblationGridDensity measures elasticity-estimation robustness as
// the profiling grid shrinks from 5×5 to 3×3 and grows to 9×9, reporting
// the rescaled-elasticity shift against the 5×5 reference.
func BenchmarkAblationGridDensity(b *testing.B) {
	w, err := ref.LookupWorkload("barnes")
	if err != nil {
		b.Fatal(err)
	}
	refFit := fitOnGrid(b, w.Config, ref.LLCSizes(), ref.Bandwidths())
	grids := map[string]struct {
		sizes []int
		bws   []float64
	}{
		"3x3": {
			sizes: []int{128 << 10, 512 << 10, 2 << 20},
			bws:   []float64{0.8, 3.2, 12.8},
		},
		"9x9": {
			sizes: []int{128 << 10, 192 << 10, 256 << 10, 384 << 10, 512 << 10, 768 << 10, 1 << 20, 1536 << 10, 2 << 20},
			bws:   []float64{0.8, 1.2, 1.6, 2.4, 3.2, 4.8, 6.4, 9.6, 12.8},
		},
	}
	for name, g := range grids {
		g := g
		b.Run(name, func(b *testing.B) {
			var drift float64
			for i := 0; i < b.N; i++ {
				got := fitOnGrid(b, w.Config, g.sizes, g.bws)
				drift = math.Abs(got.Alpha[1] - refFit.Alpha[1])
			}
			b.ReportMetric(drift, "alphaCacheDriftVs5x5")
		})
	}
}

// BenchmarkAblationPrefetcher measures how a tagged next-line prefetcher
// (absent from Table 1) would shift a streaming workload's performance and
// therefore its fitted bandwidth elasticity — the kind of platform change
// whose effect on elasticities the REF profiling pipeline must absorb.
func BenchmarkAblationPrefetcher(b *testing.B) {
	w, err := ref.LookupWorkload("streamcluster")
	if err != nil {
		b.Fatal(err)
	}
	for _, pf := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		pf := pf
		b.Run(pf.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				p := ref.DefaultPlatform(1<<20, 12.8)
				p.Prefetch = pf.on
				res, err := ref.RunWorkload(w.Config, p, benchAccesses())
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

func fitOnGrid(b *testing.B, w ref.WorkloadConfig, sizes []int, bws []float64) ref.Utility {
	b.Helper()
	prof, err := ref.SweepWorkloadGrid(w, benchAccesses(), sizes, bws)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ref.FitCobbDouglas(prof)
	if err != nil {
		b.Fatal(err)
	}
	return res.Utility.Rescaled()
}
