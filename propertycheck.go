package ref

import (
	"ref/internal/check"
	"ref/internal/par"
)

// PropertyCheckConfig tunes one property-based correctness run: how many
// random economies to draw, the base seed, size bounds, the iterative-solver
// trial budget, and worker-pool width. See internal/check.Config.
type PropertyCheckConfig = check.Config

// PropertyCheckSummary aggregates a run: trial counts, oracle evaluations,
// and every violated invariant with its reproduction coordinates and a
// minimized counterexample.
type PropertyCheckSummary = check.Summary

// PropertyFailure is one violated invariant. Its Shrunk economy renders as
// a ready-to-paste Go literal via %#v.
type PropertyFailure = check.Failure

// CheckEconomy is one randomly generated allocation problem.
type CheckEconomy = check.Economy

// CheckTreeEconomy is one randomly generated hierarchical allocation
// problem: a queue-tree declaration plus agents pinned to leaves. The
// hier stream (Config.HierTrials) draws these and checks quota floors,
// sibling-subtree SI/EF, reclaim order preservation, and the degenerate
// single-queue ulp bound; failures carry a shrunk CheckTreeEconomy in
// PropertyFailure.ShrunkTree.
type CheckTreeEconomy = check.TreeEconomy

// RunPropertyChecks draws seeded random economies — spanning degenerate
// corners like zero elasticities, near-identical agents, one dominant
// agent, and denormalized α — and checks every mechanism against the
// invariant oracles its contract promises: the paper's SI/EF/PE theorems,
// budget and capacity feasibility, CEEI and iterative-solver differential
// references, SPL deviation-gain bounds, and metamorphic symmetries.
// Trials run concurrently; results are bit-identical at any parallelism.
func RunPropertyChecks(cfg PropertyCheckConfig) (*PropertyCheckSummary, error) {
	return check.Run(cfg)
}

// ResolveParallelism reports the effective worker-pool width a run with
// the given requested parallelism would use (0 means the default:
// $REF_PARALLELISM, else GOMAXPROCS).
func ResolveParallelism(parallelism int) int { return par.Resolve(parallelism) }
