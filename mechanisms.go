package ref

import (
	"ref/internal/mech"
	"ref/internal/opt"
	"ref/internal/spl"
)

// Mechanism allocates capacity among Cobb-Douglas agents. The four
// implementations below are the mechanisms the paper's evaluation compares
// (§4.5, §5.5).
type Mechanism = mech.Mechanism

// ProportionalElasticity returns the REF mechanism: closed-form fair shares
// with SI, EF, PE, and SPL.
func ProportionalElasticity() Mechanism { return mech.ProportionalElasticity{} }

// MaxWelfareFair returns the geometric-programming mechanism that maximizes
// Nash social welfare subject to SI and EF — the empirical upper bound on
// fair performance.
func MaxWelfareFair() Mechanism { return mech.MaxWelfareFair{} }

// MaxWelfareUnfair returns the mechanism that maximizes Nash social welfare
// subject only to capacity — the empirical upper bound on throughput, with
// no fairness guarantees.
func MaxWelfareUnfair() Mechanism { return mech.MaxWelfareUnfair{} }

// EqualSlowdown returns the conventional-wisdom mechanism that maximizes
// the minimum normalized utility (equalizing slowdown), which the paper
// shows violates SI and EF.
func EqualSlowdown() Mechanism { return mech.EqualSlowdown{} }

// EgalitarianFair returns the mechanism that maximizes egalitarian welfare
// (max-min U_i) subject to SI and EF — §4.5's empirical lower bound on fair
// performance.
func EgalitarianFair() Mechanism { return mech.EgalitarianFair{} }

// EqualSplit returns the static 1/N partition that sharing incentives are
// measured against.
func EqualSplit() Mechanism { return mech.EqualSplitMech{} }

// Mechanisms returns the four evaluation mechanisms in the paper's legend
// order.
func Mechanisms() []Mechanism {
	return []Mechanism{MaxWelfareFair(), ProportionalElasticity(), MaxWelfareUnfair(), EqualSlowdown()}
}

// NormalizedUtilities returns U_i = u_i(x_i)/u_i(C) per agent — the
// utility-based weighted-progress measure of Equation 17.
func NormalizedUtilities(agents []Agent, capacity []float64, x Alloc) ([]float64, error) {
	return mech.NormalizedUtilities(agents, capacity, x)
}

// WeightedThroughput returns Σ_i U_i(x_i), the metric Figures 13–14 plot.
func WeightedThroughput(agents []Agent, capacity []float64, x Alloc) (float64, error) {
	return mech.WeightedThroughput(agents, capacity, x)
}

// UnfairnessIndex returns max_i U_i / min_j U_j, the slowdown-ratio metric
// prior work optimizes toward 1.
func UnfairnessIndex(agents []Agent, capacity []float64, x Alloc) (float64, error) {
	return mech.UnfairnessIndex(agents, capacity, x)
}

// EqualSplitAlloc returns the allocation giving every agent C/N of each
// resource.
func EqualSplitAlloc(n int, capacity []float64) Alloc {
	return opt.EqualSplit(n, capacity)
}

// BestResponseResult describes a strategic agent's optimal misreport under
// proportional elasticity (Equation 15).
type BestResponseResult = spl.BestResponseResult

// BestResponse solves the strategic agent's problem: truth must be the
// agent's rescaled elasticities; otherSums holds Σ_{j≠i} α̂_jr per resource.
func BestResponse(truth, otherSums []float64) (*BestResponseResult, error) {
	return spl.BestResponse(truth, otherSums)
}

// SPLSweepPoint aggregates best-response deviations at one system size.
type SPLSweepPoint = spl.SweepPoint

// DeviationSweep measures how fast truthfulness becomes optimal as systems
// grow (§4.3): for each size in ns it draws `trials` random economies and
// computes one strategic agent's best response.
func DeviationSweep(ns []int, resources, trials int, seed int64) ([]SPLSweepPoint, error) {
	return spl.DeviationSweep(ns, resources, trials, seed)
}
