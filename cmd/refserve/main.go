// Command refserve runs REF as a long-lived allocation daemon: an HTTP
// service where tenants join with raw elasticities or a catalog workload
// profile, leave, and read the live allocation. Writes are coalesced into
// allocation epochs — each epoch runs the Equation 13 mechanism once over
// the current agent set, audits SI/EF/PE, and atomically publishes an
// immutable versioned snapshot that reads access lock-free.
//
//	refserve -addr 127.0.0.1:8080 -cap 24,12
//	refserve -addr 127.0.0.1:8080 -resources 3
//
// -resources selects the standard N-resource platform spec and -spec takes
// a custom spec as JSON; workload-profile joins are then fitted on that
// spec's grid, and -cap may be omitted to serve the spec's full capacity.
//
//	curl -X POST localhost:8080/v1/agents \
//	     -d '{"name":"user1","elasticities":[0.6,0.4]}'
//	curl localhost:8080/v1/allocation
//	curl -X DELETE localhost:8080/v1/agents/user1
//
// SIGINT/SIGTERM drain gracefully: new mutations are refused with 503,
// everything already accepted is flushed through a final epoch, in-flight
// requests get their replies, and the run manifest (if requested) is
// written on the way out. -metrics-addr serves Prometheus metrics, expvar
// and pprof on a separate private mux.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ref"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "public API listen address")
		capStr      = flag.String("cap", "", "total capacity per resource, e.g. 24,12 (required unless -resources/-spec is set)")
		resources   = flag.Int("resources", 0, "serve the standard N-resource platform spec (0 = capacity-only, 2-resource workload profiling)")
		specJSON    = flag.String("spec", "", "serve a custom platform spec given as JSON (overrides -resources)")
		window      = flag.Duration("epoch-window", 10*time.Millisecond, "mutation batching window per allocation epoch")
		maxBatch    = flag.Int("max-batch", 64, "mutations per epoch before the window is cut short")
		queueDepth  = flag.Int("queue-depth", 0, "mutation queue bound before load shedding (0 = 4×max-batch)")
		maxBody     = flag.Int64("max-body-bytes", 1<<20, "request body size limit")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request deadline for mutation requests")
		accesses    = flag.Int("accesses", 20000, "simulation budget per configuration for workload-profile joins")
		parallelism = flag.Int("parallelism", 0, "worker pool width (0 = $REF_PARALLELISM, else GOMAXPROCS)")
		drainWait   = flag.Duration("drain-timeout", 15*time.Second, "how long a signal-triggered drain may take")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		manifestOut = flag.String("run-manifest", "", "write a structured JSON run manifest on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *capStr, *specJSON, *resources, *window, *maxBatch, *queueDepth, *maxBody, *reqTimeout,
		*accesses, *parallelism, *drainWait, *metricsAddr, *manifestOut); err != nil {
		fmt.Fprintln(os.Stderr, "refserve:", err)
		os.Exit(1)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(addr, capStr, specJSON string, resources int, window time.Duration, maxBatch, queueDepth int, maxBody int64,
	reqTimeout time.Duration, accesses, parallelism int, drainWait time.Duration,
	metricsAddr, manifestOut string) error {
	var spec ref.PlatformSpec
	if specJSON != "" || resources != 0 {
		var err error
		if spec, err = ref.ResolveSpecArg([]byte(specJSON), resources); err != nil {
			return err
		}
	} else if capStr == "" {
		return fmt.Errorf("need -cap (total capacity per resource, e.g. -cap 24,12) or -resources/-spec")
	}
	var capacity []float64
	if capStr != "" {
		var err error
		if capacity, err = parseFloats(capStr); err != nil {
			return err
		}
	}

	reg := ref.NewMetricsRegistry()
	ref.InstallMetrics(reg)
	var manifest *ref.RunManifest
	if manifestOut != "" {
		manifest = ref.NewRunManifest("refserve", os.Args[1:])
		manifest.Parallelism = ref.ResolveParallelism(parallelism)
		manifest.Accesses = accesses
	}
	if metricsAddr != "" {
		msrv, err := ref.ServeMetrics(metricsAddr)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("refserve: serving metrics on http://%s/metrics\n", msrv.Addr())
	}

	srv, err := ref.NewAllocationServer(ref.ServeConfig{
		Spec:            spec,
		Capacity:        capacity,
		Window:          window,
		MaxBatch:        maxBatch,
		QueueDepth:      queueDepth,
		MaxBodyBytes:    maxBody,
		RequestTimeout:  reqTimeout,
		Parallelism:     parallelism,
		ProfileAccesses: accesses,
	})
	if err != nil {
		return err
	}
	httpSrv, err := srv.Serve(addr)
	if err != nil {
		return err
	}
	start := time.Now()
	served := srv.Capacity()
	if len(spec.Dims) > 0 {
		fmt.Printf("refserve: serving on http://%s (spec %q, capacity %v, window %s, max batch %d)\n",
			httpSrv.Addr(), spec.Name, served, window, maxBatch)
	} else {
		fmt.Printf("refserve: serving on http://%s (capacity %v, window %s, max batch %d)\n",
			httpSrv.Addr(), served, window, maxBatch)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Printf("refserve: %s received, draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Order matters: drain the allocator first so in-flight mutation
	// requests get their final-epoch replies, then stop the listener,
	// which waits for those handlers to finish writing.
	drainErr := srv.Close(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if manifest != nil {
		manifest.Record("serve", time.Since(start).Seconds(), drainErr)
		if werr := manifest.WriteFile(manifestOut); werr != nil {
			fmt.Fprintln(os.Stderr, "refserve: manifest:", werr)
		} else {
			fmt.Printf("refserve: run manifest written to %s\n", manifestOut)
		}
	}
	if drainErr != nil {
		return drainErr
	}
	snap := srv.Current()
	fmt.Printf("refserve: drained cleanly at epoch %d (%d agents)\n", snap.Epoch, snap.NumAgents())
	return nil
}
