// Command refserve runs REF as a long-lived allocation daemon: an HTTP
// service where tenants join with raw elasticities or a catalog workload
// profile, leave, and read the live allocation. Writes are coalesced into
// allocation epochs — each epoch runs the Equation 13 mechanism once over
// the current agent set, audits SI/EF/PE, and atomically publishes an
// immutable versioned snapshot that reads access lock-free.
//
//	refserve -addr 127.0.0.1:8080 -cap 24,12
//	refserve -addr 127.0.0.1:8080 -resources 3
//
// -resources selects the standard N-resource platform spec and -spec takes
// a custom spec as JSON; workload-profile joins are then fitted on that
// spec's grid, and -cap may be omitted to serve the spec's full capacity.
//
//	curl -X POST localhost:8080/v1/agents \
//	     -d '{"name":"user1","elasticities":[0.6,0.4]}'
//	curl localhost:8080/v1/allocation
//	curl -X DELETE localhost:8080/v1/agents/user1
//
// SIGINT/SIGTERM drain gracefully: new mutations are refused with 503,
// everything already accepted is flushed through a final epoch, in-flight
// requests get their replies, and the run manifest (if requested) is
// written on the way out. -metrics-addr serves Prometheus metrics, expvar
// and pprof on a separate private mux.
//
// Observability extras: -trace N retains the last N epoch/stage spans in
// a ring served as Chrome trace-event JSON at /debug/trace on the metrics
// mux (and embedded in the run manifest); -flight-recorder N keeps a
// per-epoch flight recorder served at GET /debug/ref/flightrecorder on
// the public mux, dumping automatically on audit failures, latency
// breaches, and shed spikes; -slo-epoch sets the epoch-latency SLO those
// breaches are judged against; -profile-rate enables runtime block and
// mutex profiling for /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ref"
	"ref/internal/cliutil"
)

// serveOptions bundles refserve's flag values.
type serveOptions struct {
	addr        string
	capStr      string
	specJSON    string
	queuesFile  string
	resources   int
	window      time.Duration
	maxBatch    int
	queueDepth  int
	maxBody     int64
	reqTimeout  time.Duration
	accesses    int
	parallelism int
	drainWait   time.Duration
	metricsAddr string
	manifestOut string
	credit      cliutil.CreditFlags

	traceEvents int
	flightRec   int
	flightDir   string
	sloEpoch    time.Duration
	sloBudget   float64
	profileRate int
}

func main() {
	var o serveOptions
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "public API listen address")
	flag.StringVar(&o.capStr, "cap", "", "total capacity per resource, e.g. 24,12 (required unless -resources/-spec is set)")
	flag.IntVar(&o.resources, "resources", 0, "serve the standard N-resource platform spec (0 = capacity-only, 2-resource workload profiling)")
	flag.StringVar(&o.specJSON, "spec", "", "serve a custom platform spec given as JSON (overrides -resources)")
	flag.StringVar(&o.queuesFile, "queues", "", "declare a hierarchical queue tree at boot from a ref/queues/v1 JSON file")
	flag.DurationVar(&o.window, "epoch-window", 10*time.Millisecond, "mutation batching window per allocation epoch")
	flag.IntVar(&o.maxBatch, "max-batch", 64, "mutations per epoch before the window is cut short")
	flag.IntVar(&o.queueDepth, "queue-depth", 0, "mutation queue bound before load shedding (0 = 4×max-batch)")
	flag.Int64Var(&o.maxBody, "max-body-bytes", 1<<20, "request body size limit")
	flag.DurationVar(&o.reqTimeout, "request-timeout", 10*time.Second, "per-request deadline for mutation requests")
	flag.IntVar(&o.accesses, "accesses", 20000, "simulation budget per configuration for workload-profile joins")
	flag.DurationVar(&o.drainWait, "drain-timeout", 15*time.Second, "how long a signal-triggered drain may take")
	cliutil.ParallelismVar(flag.CommandLine, &o.parallelism)
	cliutil.MetricsAddrVar(flag.CommandLine, &o.metricsAddr)
	cliutil.RunManifestVar(flag.CommandLine, &o.manifestOut)
	cliutil.CreditVar(flag.CommandLine, &o.credit)
	flag.IntVar(&o.traceEvents, "trace", 0, "retain the last N trace spans and serve them at /debug/trace (0 = tracing off)")
	flag.IntVar(&o.flightRec, "flight-recorder", 0, "retain the last N epoch records in the flight recorder (0 = off)")
	flag.StringVar(&o.flightDir, "flight-dump-dir", "", "directory for anomaly-triggered flight-recorder dump files (empty = in-memory only)")
	flag.DurationVar(&o.sloEpoch, "slo-epoch", 0, "epoch-latency SLO threshold; epochs over it burn error budget (0 = no SLO)")
	flag.Float64Var(&o.sloBudget, "slo-budget", 0.01, "fraction of epochs allowed over the SLO threshold")
	flag.IntVar(&o.profileRate, "profile-rate", 0, "runtime block/mutex profile rate for /debug/pprof (0 = off)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "refserve:", err)
		os.Exit(1)
	}
}

func run(o serveOptions) error {
	if err := o.credit.Validate(); err != nil {
		return err
	}
	var spec ref.PlatformSpec
	if o.specJSON != "" || o.resources != 0 {
		var err error
		if spec, err = ref.ResolveSpecArg([]byte(o.specJSON), o.resources); err != nil {
			return err
		}
	} else if o.capStr == "" {
		return fmt.Errorf("need -cap (total capacity per resource, e.g. -cap 24,12) or -resources/-spec")
	}
	var capacity []float64
	if o.capStr != "" {
		var err error
		if capacity, err = cliutil.ParseFloats(o.capStr); err != nil {
			return err
		}
	}
	var queues []ref.QueueConfig
	if o.queuesFile != "" {
		f, err := os.Open(o.queuesFile)
		if err != nil {
			return err
		}
		tc, err := ref.DecodeQueueTreeConfig(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", o.queuesFile, err)
		}
		queues = tc.Queues
	}

	reg := ref.NewMetricsRegistry()
	ref.InstallMetrics(reg)
	if o.traceEvents > 0 {
		ref.InstallTracer(ref.NewTracer(o.traceEvents))
	}
	ref.SetRuntimeProfileRate(o.profileRate)
	var manifest *ref.RunManifest
	if o.manifestOut != "" {
		manifest = ref.NewRunManifest("refserve", os.Args[1:])
		manifest.Parallelism = ref.ResolveParallelism(o.parallelism)
		manifest.Accesses = o.accesses
	}
	if o.metricsAddr != "" {
		msrv, err := ref.ServeMetrics(o.metricsAddr)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("refserve: serving metrics on http://%s/metrics\n", msrv.Addr())
	}

	srv, err := ref.NewAllocationServer(ref.ServeConfig{
		Spec:            spec,
		Capacity:        capacity,
		Queues:          queues,
		Window:          o.window,
		MaxBatch:        o.maxBatch,
		QueueDepth:      o.queueDepth,
		MaxBodyBytes:    o.maxBody,
		RequestTimeout:  o.reqTimeout,
		Parallelism:     o.parallelism,
		ProfileAccesses: o.accesses,
		FlightRecorder:  o.flightRec,
		FlightDumpDir:   o.flightDir,
		SLOEpochLatency: o.sloEpoch,
		SLOBudget:       o.sloBudget,
		CreditHalfLife:  o.credit.HalfLife,
		CreditMinBudget: o.credit.MinBudget,
		CreditMaxBudget: o.credit.MaxBudget,
	})
	if err != nil {
		return err
	}
	httpSrv, err := srv.Serve(o.addr)
	if err != nil {
		return err
	}
	start := time.Now()
	served := srv.Capacity()
	if len(spec.Dims) > 0 {
		fmt.Printf("refserve: serving on http://%s (spec %q, capacity %v, window %s, max batch %d)\n",
			httpSrv.Addr(), spec.Name, served, o.window, o.maxBatch)
	} else {
		fmt.Printf("refserve: serving on http://%s (capacity %v, window %s, max batch %d)\n",
			httpSrv.Addr(), served, o.window, o.maxBatch)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Printf("refserve: %s received, draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), o.drainWait)
	defer cancel()
	// Order matters: drain the allocator first so in-flight mutation
	// requests get their final-epoch replies, then stop the listener,
	// which waits for those handlers to finish writing.
	drainErr := srv.Close(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if manifest != nil {
		manifest.Record("serve", time.Since(start).Seconds(), drainErr)
		if slo, ok := srv.SLOStats(); ok {
			manifest.SLO = append(manifest.SLO, slo)
		}
		manifest.AttachTrace(ref.InstalledTracer())
		if werr := manifest.WriteFile(o.manifestOut); werr != nil {
			fmt.Fprintln(os.Stderr, "refserve: manifest:", werr)
		} else {
			fmt.Printf("refserve: run manifest written to %s\n", o.manifestOut)
		}
	}
	if drainErr != nil {
		return drainErr
	}
	snap := srv.Current()
	fmt.Printf("refserve: drained cleanly at epoch %d (%d agents)\n", snap.Epoch, snap.NumAgents())
	return nil
}
