// Command refsim runs the platform simulator for one catalog workload,
// either at a single configuration or across the full Table 1 grid.
//
// Usage:
//
//	refsim -workloads                         list the catalog
//	refsim -w dedup                           sweep the 5×5 grid, print IPC + fit
//	refsim -w dedup -cache 1048576 -bw 6.4    one configuration
//	refsim -w dedup -accesses 50000           higher fidelity
//	refsim -w dedup -metrics-addr :9090 -run-manifest run.json
//
// -metrics-addr serves Prometheus text on /metrics plus expvar and pprof
// under /debug/ for the run's duration; -run-manifest writes a structured
// JSON record of the run on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ref"
)

func main() {
	var (
		listW    = flag.Bool("workloads", false, "list catalog workloads")
		name     = flag.String("w", "", "workload name")
		cacheB   = flag.Int("cache", 0, "LLC capacity in bytes (0 = sweep the grid)")
		bw       = flag.Float64("bw", 0, "memory bandwidth in GB/s (0 = sweep the grid)")
		accesses = flag.Int("accesses", 20000, "memory accesses to simulate per configuration")
		parallel = flag.Int("parallelism", 0, "worker-pool width for grid sweeps (0 = REF_PARALLELISM or GOMAXPROCS)")
		csvPath  = flag.String("csv", "", "write the swept profile as CSV to this file")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/vars (expvar), and /debug/pprof on this address for the run's duration")
		manifestOut = flag.String("run-manifest", "", "write a structured JSON run manifest to this path on exit")
	)
	flag.Parse()
	effParallel := *parallel
	if effParallel <= 0 {
		effParallel = ref.Parallelism()
	}

	var manifest *ref.RunManifest
	if *metricsAddr != "" || *manifestOut != "" {
		ref.InstallMetrics(ref.NewMetricsRegistry())
	}
	if *metricsAddr != "" {
		srv, err := ref.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("refsim: metrics at http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof)\n", srv.Addr())
	}
	if *manifestOut != "" {
		manifest = ref.NewRunManifest("refsim", os.Args[1:])
		manifest.Parallelism = effParallel
		manifest.Accesses = *accesses
	}
	writeManifest := func(id string, seconds float64, err error) {
		if manifest == nil {
			return
		}
		manifest.Record(id, seconds, err)
		if werr := manifest.WriteFile(*manifestOut); werr != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("run manifest written to %s\n", *manifestOut)
	}

	if *listW {
		for _, w := range ref.Workloads() {
			fmt.Printf("%-20s %-10s class %s\n", w.Config.Name, w.Suite, w.Class)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "refsim: choose a workload with -w <name> (see -workloads)")
		os.Exit(2)
	}
	w, err := ref.LookupWorkload(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
		os.Exit(1)
	}
	if *cacheB > 0 && *bw > 0 {
		start := time.Now()
		res, err := ref.RunWorkload(w.Config, ref.DefaultPlatform(*cacheB, *bw), *accesses)
		if err != nil {
			writeManifest("run:"+*name, time.Since(start).Seconds(), err)
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s @ %d B LLC, %g GB/s: IPC=%.3f L1 miss=%.3f LLC miss=%.3f avg mem latency=%.0f cycles\n",
			*name, *cacheB, *bw, res.IPC(), res.L1MissRate, res.LLCMissRate, res.AvgMemLatency)
		writeManifest("run:"+*name, time.Since(start).Seconds(), nil)
		return
	}
	start := time.Now()
	prof, err := ref.SweepWorkloadParallel(w.Config, *accesses, *parallel)
	if err != nil {
		writeManifest("sweep:"+*name, time.Since(start).Seconds(), err)
		fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
		os.Exit(1)
	}
	writeManifest("sweep:"+*name, time.Since(start).Seconds(), nil)
	fmt.Printf("%s (%s, class %s): Table 1 sweep, %d accesses per config, parallelism=%d\n",
		*name, w.Suite, w.Class, *accesses, effParallel)
	for _, s := range prof.Samples {
		fmt.Printf("  bw=%5.1f GB/s cache=%5.3f MB  IPC=%.3f\n", s.Alloc[0], s.Alloc[1], s.Perf)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		if err := prof.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile written to %s\n", *csvPath)
	}
	fit, err := ref.FitCobbDouglas(prof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refsim: fit: %v\n", err)
		os.Exit(1)
	}
	r := fit.Utility.Rescaled()
	fmt.Printf("fitted: u = %s   (R²=%.3f)\n", fit.Utility, fit.R2)
	fmt.Printf("rescaled elasticities: α_mem=%.3f α_cache=%.3f → class %s\n",
		r.Alpha[0], r.Alpha[1], map[bool]string{true: "C", false: "M"}[r.Alpha[1] > 0.5])
}
