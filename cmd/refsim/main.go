// Command refsim runs the platform simulator for one catalog workload,
// either at a single configuration or across the full Table 1 grid.
//
// Usage:
//
//	refsim -workloads                         list the catalog
//	refsim -w dedup                           sweep the 5×5 grid, print IPC + fit
//	refsim -w dedup -cache 1048576 -bw 6.4    one configuration
//	refsim -w dedup -accesses 50000           higher fidelity
//	refsim -w dedup -resources 3              sweep the 3-resource spec's grid
//	refsim -w dedup -spec '{"dims":[...]}'    sweep a custom platform spec
//	refsim -w dedup -metrics-addr :9090 -run-manifest run.json
//
// Without -resources/-spec the output is the historical 2-resource sweep,
// byte for byte. With either flag the sweep runs over the spec's grid and
// prints one dim-labeled line per configuration plus the fitted per-dim
// elasticities.
//
// -metrics-addr serves Prometheus text on /metrics plus expvar and pprof
// under /debug/ for the run's duration; -run-manifest writes a structured
// JSON record of the run on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ref"
	"ref/internal/cliutil"
)

func main() {
	var (
		listW    = flag.Bool("workloads", false, "list catalog workloads")
		name     = flag.String("w", "", "workload name")
		cacheB   = flag.Int("cache", 0, "LLC capacity in bytes (0 = sweep the grid)")
		bw       = flag.Float64("bw", 0, "memory bandwidth in GB/s (0 = sweep the grid)")
		accesses = flag.Int("accesses", 20000, "memory accesses to simulate per configuration")
		csvPath  = flag.String("csv", "", "write the swept profile as CSV to this file")

		resources = flag.Int("resources", 0, "sweep the standard N-resource platform spec instead of the Table 1 pair (0 = legacy 2-resource output)")
		specJSON  = flag.String("spec", "", "sweep a custom platform spec given as JSON (overrides -resources)")

		parallelism int
		metricsAddr string
		manifestOut string
	)
	cliutil.ParallelismVar(flag.CommandLine, &parallelism)
	cliutil.MetricsAddrVar(flag.CommandLine, &metricsAddr)
	cliutil.RunManifestVar(flag.CommandLine, &manifestOut)
	flag.Parse()
	effParallel := parallelism
	if effParallel <= 0 {
		effParallel = ref.Parallelism()
	}

	var manifest *ref.RunManifest
	if metricsAddr != "" || manifestOut != "" {
		ref.InstallMetrics(ref.NewMetricsRegistry())
	}
	if metricsAddr != "" {
		srv, err := ref.ServeMetrics(metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("refsim: metrics at http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof)\n", srv.Addr())
	}
	if manifestOut != "" {
		manifest = ref.NewRunManifest("refsim", os.Args[1:])
		manifest.Parallelism = effParallel
		manifest.Accesses = *accesses
	}
	writeManifest := func(id string, seconds float64, err error) {
		if manifest == nil {
			return
		}
		manifest.Record(id, seconds, err)
		if werr := manifest.WriteFile(manifestOut); werr != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("run manifest written to %s\n", manifestOut)
	}

	if *listW {
		for _, w := range ref.Workloads() {
			fmt.Printf("%-20s %-10s class %s\n", w.Config.Name, w.Suite, w.Class)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "refsim: choose a workload with -w <name> (see -workloads)")
		os.Exit(2)
	}
	w, err := ref.LookupWorkload(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
		os.Exit(1)
	}
	if *specJSON != "" || *resources != 0 {
		if *cacheB > 0 || *bw > 0 {
			fmt.Fprintln(os.Stderr, "refsim: -cache/-bw select a Table 1 point and cannot combine with -resources/-spec")
			os.Exit(2)
		}
		spec, err := ref.ResolveSpecArg([]byte(*specJSON), *resources)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		prof, err := ref.SweepWorkloadSpec(w.Config, spec, *accesses, parallelism)
		if err != nil {
			writeManifest("sweep-spec:"+*name, time.Since(start).Seconds(), err)
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		writeManifest("sweep-spec:"+*name, time.Since(start).Seconds(), nil)
		fmt.Printf("%s (%s, class %s): %q sweep over %d resources, %d accesses per config, parallelism=%d\n",
			*name, w.Suite, w.Class, spec.Name, spec.NumResources(), *accesses, effParallel)
		for _, s := range prof.Samples {
			parts := make([]string, len(spec.Dims))
			for j, d := range spec.Dims {
				parts[j] = d.Name + "=" + d.FormatValue(s.Alloc[j])
			}
			fmt.Printf("  %s  perf=%.3f\n", strings.Join(parts, "  "), s.Perf)
		}
		if *csvPath != "" {
			writeCSV(prof, *csvPath)
		}
		fit, err := ref.FitCobbDouglas(prof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refsim: fit: %v\n", err)
			os.Exit(1)
		}
		r := fit.Utility.Rescaled()
		fmt.Printf("fitted: u = %s   (R²=%.3f)\n", fit.Utility, fit.R2)
		var el strings.Builder
		el.WriteString("rescaled elasticities:")
		for j, d := range spec.Dims {
			fmt.Fprintf(&el, " α_%s=%.3f", d.Name, r.Alpha[j])
		}
		if ci, bi := spec.DimIndex("cache"), spec.DimIndex("bandwidth"); ci >= 0 && bi >= 0 {
			fmt.Fprintf(&el, " → class %s", map[bool]string{true: "C", false: "M"}[r.Alpha[ci] > r.Alpha[bi]])
		}
		fmt.Println(el.String())
		return
	}
	if *cacheB > 0 && *bw > 0 {
		start := time.Now()
		res, err := ref.RunWorkload(w.Config, ref.DefaultPlatform(*cacheB, *bw), *accesses)
		if err != nil {
			writeManifest("run:"+*name, time.Since(start).Seconds(), err)
			fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s @ %d B LLC, %g GB/s: IPC=%.3f L1 miss=%.3f LLC miss=%.3f avg mem latency=%.0f cycles\n",
			*name, *cacheB, *bw, res.IPC(), res.L1MissRate, res.LLCMissRate, res.AvgMemLatency)
		writeManifest("run:"+*name, time.Since(start).Seconds(), nil)
		return
	}
	start := time.Now()
	prof, err := ref.SweepWorkloadParallel(w.Config, *accesses, parallelism)
	if err != nil {
		writeManifest("sweep:"+*name, time.Since(start).Seconds(), err)
		fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
		os.Exit(1)
	}
	writeManifest("sweep:"+*name, time.Since(start).Seconds(), nil)
	fmt.Printf("%s (%s, class %s): Table 1 sweep, %d accesses per config, parallelism=%d\n",
		*name, w.Suite, w.Class, *accesses, effParallel)
	for _, s := range prof.Samples {
		fmt.Printf("  bw=%5.1f GB/s cache=%5.3f MB  IPC=%.3f\n", s.Alloc[0], s.Alloc[1], s.Perf)
	}
	if *csvPath != "" {
		writeCSV(prof, *csvPath)
	}
	fit, err := ref.FitCobbDouglas(prof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refsim: fit: %v\n", err)
		os.Exit(1)
	}
	r := fit.Utility.Rescaled()
	fmt.Printf("fitted: u = %s   (R²=%.3f)\n", fit.Utility, fit.R2)
	fmt.Printf("rescaled elasticities: α_mem=%.3f α_cache=%.3f → class %s\n",
		r.Alpha[0], r.Alpha[1], map[bool]string{true: "C", false: "M"}[r.Alpha[1] > 0.5])
}

func writeCSV(prof *ref.Profile, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
		os.Exit(1)
	}
	if err := prof.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("profile written to %s\n", path)
}
