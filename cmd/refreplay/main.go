// Command refreplay is the deterministic trace-replay regression
// driver: it pushes tenant arrival/departure/re-declaration traces —
// synthesized by the seeded built-in scenario generators or loaded from
// a ref/trace/v1 file — through the real allocation server on a fake
// clock, re-auditing every published snapshot with the §4 fairness
// oracles and checking the online invariants (epoch monotonicity,
// delta-read consistency, Equation 13 differential, sampled-audit
// parity) inline. Replays are bit-identical across runs, worker-pool
// widths, and shard counts; the run digest printed per scenario is the
// value the committed goldens pin.
//
//	refreplay -scenario all -seed 1 -run-manifest replay.json
//	refreplay -scenario flashcrowd -agents 96 -epochs 60 -golden
//	refreplay -scenario credit-cycle -half-life 10s -golden
//	refreplay -trace trace.jsonl -force-sampled -audit-sample 16
//
// Exactly one of -scenario or -trace selects the input. -half-life boots
// the replayed server with the time-aware credit ledger and arms the
// replay driver's mirror ledger: every published budget, rollup, and
// long-run fairness oracle is re-derived independently from the snapshot
// stream and any divergence is a violation. Any invariant violation makes
// the exit status nonzero; the manifest's `replay` section carries each
// scenario's digest and violation list so CI can assert emptiness with a
// JSON query instead of scraping stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ref"
	"ref/internal/cliutil"
)

func main() {
	var (
		scenario    = flag.String("scenario", "", "built-in scenario to replay, or \"all\" (one of: "+scenarioList()+")")
		tracePath   = flag.String("trace", "", "replay a ref/trace/v1 file (JSON or JSONL) instead of a built-in scenario")
		agents      = flag.Int("agents", 0, "scenario population scale (0 = default)")
		epochs      = flag.Int("epochs", 0, "scenario length in ticks (0 = default)")
		queueCount  = flag.Int("queue-count", 0, "static queues declared by queue-aware scenarios (0 = default, negative disables; others ignore it)")
		shards      = flag.Int("shards", 0, "agent-table shards (0 = serve default)")
		deltaWindow = flag.Int("delta-window", 0, "changelog ring depth for ?since= reads (0 = serve default)")
		forceSample = flag.Bool("force-sampled", false, "force the sampled audit and check sampled-vs-exact parity")
		auditSample = flag.Int("audit-sample", 0, "rotating audit window size under -force-sampled (0 = serve default)")
		flightRec   = flag.Int("flight-recorder", 0, "epoch flight-recorder ring size (0 = off)")
		injectFail  = flag.Uint64("inject-audit-failure", 0, "flip the SI verdict at this epoch to exercise the anomaly path (0 = off)")
		maxUlps     = flag.Int64("max-ulps", 0, "Equation 13 differential tolerance in ulps (0 = default)")
		golden      = flag.Bool("golden", false, "print the full golden text (per-epoch digests), not just the summary")

		seed        int64
		parallelism int
		manifestOut string
		credit      cliutil.CreditFlags
	)
	cliutil.SeedVar(flag.CommandLine, &seed, "scenario generator seed")
	cliutil.ParallelismVar(flag.CommandLine, &parallelism)
	cliutil.RunManifestVar(flag.CommandLine, &manifestOut)
	cliutil.CreditVar(flag.CommandLine, &credit)
	flag.Parse()
	if err := credit.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "refreplay: %v\n", err)
		os.Exit(1)
	}
	if err := run(*scenario, *tracePath, seed, *agents, *epochs, *queueCount, ref.ReplayOptions{
		Parallelism:             parallelism,
		Shards:                  *shards,
		DeltaWindow:             *deltaWindow,
		ForceSampled:            *forceSample,
		AuditSample:             *auditSample,
		FlightRecorder:          *flightRec,
		InjectAuditFailureEpoch: *injectFail,
		MaxUlps:                 *maxUlps,
		CreditHalfLife:          credit.HalfLife,
		CreditMinBudget:         credit.MinBudget,
		CreditMaxBudget:         credit.MaxBudget,
	}, *golden, manifestOut); err != nil {
		fmt.Fprintf(os.Stderr, "refreplay: %v\n", err)
		os.Exit(1)
	}
}

func scenarioList() string {
	s := ""
	for i, name := range ref.ReplayScenarios() {
		if i > 0 {
			s += ", "
		}
		s += name
	}
	return s
}

func run(scenario, tracePath string, seed int64, agents, epochs, queueCount int,
	opts ref.ReplayOptions, golden bool, manifestOut string) error {
	if (scenario == "") == (tracePath == "") {
		return fmt.Errorf("need exactly one of -scenario or -trace")
	}

	var manifest *ref.RunManifest
	if manifestOut != "" {
		manifest = ref.NewRunManifest("refreplay", os.Args[1:])
		manifest.Parallelism = ref.ResolveParallelism(opts.Parallelism)
	}

	// Assemble the work list: named scenarios generate their trace on
	// the fly; -trace decodes one file.
	type job struct {
		name  string
		trace *ref.ReplayTrace
	}
	var jobs []job
	switch {
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		tr, err := ref.DecodeReplayTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", tracePath, err)
		}
		name := tr.Name
		if name == "" {
			name = tracePath
		}
		jobs = append(jobs, job{name, tr})
	case scenario == "all":
		for _, name := range ref.ReplayScenarios() {
			jobs = append(jobs, job{name: name})
		}
	default:
		jobs = append(jobs, job{name: scenario})
	}

	cfg := ref.ReplayScenarioConfig{Agents: agents, Epochs: epochs, Seed: seed, Queues: queueCount}
	failed := 0
	for _, j := range jobs {
		start := time.Now()
		var res *ref.ReplayResult
		var err error
		if j.trace != nil {
			res, err = ref.RunReplay(j.trace, opts)
		} else {
			res, err = ref.RunReplayScenario(j.name, cfg, opts)
		}
		secs := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		if manifest != nil {
			manifest.RecordReplay(ref.ReplayRecord{
				Name:        res.Trace,
				Seed:        res.Seed,
				Events:      res.Events,
				Epochs:      res.Epochs,
				FinalAgents: res.FinalAgents,
				PeakAgents:  res.PeakAgents,
				Checks:      res.Checks,
				Digest:      res.Digest,
				Violations:  append([]string{}, res.Violations...),
				FlightDumps: res.FlightDumps,
				Seconds:     secs,
			})
			var runErr error
			if res.Failed() {
				runErr = fmt.Errorf("%d invariant violations", len(res.Violations))
			}
			manifest.Record("replay:"+res.Trace, secs, runErr)
		}
		if golden {
			fmt.Print(res.GoldenText())
		}
		verdict := "ok"
		if res.Failed() {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			failed++
		}
		fmt.Printf("refreplay: %-21s seed=%-3d events=%-5d epochs=%-3d agents=%d/%d checks=%-5d %.2fs digest=%s %s\n",
			res.Trace, res.Seed, res.Events, res.Epochs, res.FinalAgents, res.PeakAgents,
			res.Checks, secs, res.Digest[:16], verdict)
		for _, v := range res.Violations {
			fmt.Printf("refreplay:   violation: %s\n", v)
		}
	}

	if manifest != nil {
		if err := manifest.WriteFile(manifestOut); err != nil {
			return err
		}
		fmt.Printf("refreplay: run manifest written to %s\n", manifestOut)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d replays violated invariants", failed, len(jobs))
	}
	return nil
}
