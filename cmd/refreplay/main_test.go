package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ref"
)

// TestRunScenarioWithManifest drives the CLI's run function end to end:
// a small scenario replay must pass, fill the manifest's replay section,
// and leave an empty violations list for CI's jq assertion.
func TestRunScenarioWithManifest(t *testing.T) {
	out := filepath.Join(t.TempDir(), "replay.json")
	err := run("steady", "", 1, 10, 8, 0, ref.ReplayOptions{}, false, out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m, err := ref.ReadRunManifest(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Replay) != 1 {
		t.Fatalf("manifest replay section has %d entries", len(m.Replay))
	}
	r := m.Replay[0]
	if r.Name != "steady" || r.Epochs != 8 || r.Digest == "" || len(r.Violations) != 0 {
		t.Fatalf("replay record %+v", r)
	}
	if len(m.Runs) == 0 || !strings.HasPrefix(m.Runs[0].ID, "replay:") {
		t.Fatalf("manifest runs %+v", m.Runs)
	}
}

// TestRunTraceFile exercises the -trace path: a generated trace written
// to disk replays cleanly, and input selection is validated.
func TestRunTraceFile(t *testing.T) {
	tr, err := ref.GenerateReplayScenario("diurnal", ref.ReplayScenarioConfig{Agents: 8, Epochs: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run("", path, 1, 0, 0, 0, ref.ReplayOptions{}, false, ""); err != nil {
		t.Fatalf("trace replay: %v", err)
	}

	if err := run("", "", 1, 0, 0, 0, ref.ReplayOptions{}, false, ""); err == nil {
		t.Error("neither -scenario nor -trace accepted")
	}
	if err := run("steady", path, 1, 0, 0, 0, ref.ReplayOptions{}, false, ""); err == nil {
		t.Error("both -scenario and -trace accepted")
	}
	if err := run("no-such", "", 1, 0, 0, 0, ref.ReplayOptions{}, false, ""); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("", filepath.Join(t.TempDir(), "missing.jsonl"), 1, 0, 0, 0, ref.ReplayOptions{}, false, ""); err == nil {
		t.Error("missing trace file accepted")
	}
}
