// Command refcheck runs the property-based correctness harness: N seeded
// random economies checked against every mechanism's invariant oracles —
// the paper's SI/EF/PE theorems, feasibility, CEEI and solver differential
// references, SPL gain bounds, and metamorphic symmetries. It prints any
// violations as minimized, ready-to-paste Go counterexamples and exits
// nonzero.
//
//	refcheck -trials 2000 -seed 1
//	refcheck -trials 1 -seed 1 -trial-offset 1234   # replay one failing trial
//
// -metrics-addr serves live Prometheus metrics for the duration of the
// run; -run-manifest writes a structured JSON record; -cx-out writes the
// shrunk counterexamples to a file (CI uploads it as an artifact on
// failure).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ref"
)

func main() {
	var (
		trials       = flag.Int("trials", 2000, "random economies to check against the closed-form mechanisms")
		seed         = flag.Int64("seed", 1, "base seed; every trial's economy derives deterministically from it")
		trialOffset  = flag.Int("trial-offset", 0, "first trial index (replay a specific failing trial without the run before it)")
		maxAgents    = flag.Int("max-agents", 0, "max agents per economy (0 = default 64)")
		maxResources = flag.Int("max-resources", 0, "max resources per economy (0 = default 8)")
		solverTrials = flag.Int("solver-trials", 0, "trials for the iterative-solver subjects (0 = trials/50, negative disables)")
		hierTrials   = flag.Int("hier-trials", 0, "trials for the hierarchical queue-tree stream (0 = trials, negative disables)")
		simTrials    = flag.Int("sim-trials", 0, "trials whose economies are sim-backed 3-resource profile fits (0 disables)")
		simAccesses  = flag.Int("sim-accesses", 0, "per-configuration access budget for sim-backed profiling (0 = default 2000)")
		parallelism  = flag.Int("parallelism", 0, "worker pool width (0 = $REF_PARALLELISM, else GOMAXPROCS)")
		noShrink     = flag.Bool("no-shrink", false, "skip counterexample minimization")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
		manifestOut  = flag.String("run-manifest", "", "write a structured JSON run manifest to this path on exit")
		cxOut        = flag.String("cx-out", "", "write shrunk counterexamples (Go literals) to this path on failure")
	)
	flag.Parse()
	if err := run(*trials, *seed, *trialOffset, *maxAgents, *maxResources, *solverTrials, *hierTrials,
		*simTrials, *simAccesses, *parallelism, *noShrink, *metricsAddr, *manifestOut, *cxOut); err != nil {
		fmt.Fprintln(os.Stderr, "refcheck:", err)
		os.Exit(1)
	}
}

func run(trials int, seed int64, trialOffset, maxAgents, maxResources, solverTrials, hierTrials,
	simTrials, simAccesses, parallelism int, noShrink bool, metricsAddr, manifestOut, cxOut string) error {
	reg := ref.NewMetricsRegistry()
	ref.InstallMetrics(reg)
	var manifest *ref.RunManifest
	if manifestOut != "" {
		manifest = ref.NewRunManifest("refcheck", os.Args[1:])
		manifest.Parallelism = ref.ResolveParallelism(parallelism)
	}
	if metricsAddr != "" {
		srv, err := ref.ServeMetrics(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr())
	}

	cfg := ref.PropertyCheckConfig{
		Trials:       trials,
		Seed:         seed,
		TrialOffset:  trialOffset,
		MaxAgents:    maxAgents,
		MaxResources: maxResources,
		SolverTrials: solverTrials,
		HierTrials:   hierTrials,
		SimTrials:    simTrials,
		SimAccesses:  simAccesses,
		Parallelism:  parallelism,
		NoShrink:     noShrink,
	}
	start := time.Now()
	sum, err := ref.RunPropertyChecks(cfg)
	elapsed := time.Since(start)
	if manifest != nil {
		manifest.Record("check", elapsed.Seconds(), err)
		if werr := manifest.WriteFile(manifestOut); werr != nil {
			fmt.Fprintln(os.Stderr, "refcheck: manifest:", werr)
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("refcheck: %d fast + %d solver + %d sim + %d hier trials, %d oracle evaluations in %s (seed %d)\n",
		sum.Trials, sum.SolverTrials, sum.SimTrials, sum.HierTrials, sum.Checks, elapsed.Round(time.Millisecond), seed)
	if sum.OK() {
		fmt.Println("refcheck: all properties hold")
		return nil
	}

	var cx strings.Builder
	for i, f := range sum.Failures {
		fmt.Printf("\nFAIL %d/%d: %s\n", i+1, len(sum.Failures), f)
		for _, finding := range f.Findings {
			fmt.Println("  " + finding)
		}
		if f.ShrunkTree != nil {
			// Hier-stream failures shrink to a queue-tree economy; replay
			// them by pinning the hier stream to the failing trial.
			fmt.Printf("  replay: refcheck -trials 1 -hier-trials 1 -seed %d -trial-offset %d\n", seed, f.Trial)
			fmt.Printf("  shrunk counterexample (%d agents, %d queues):\n%#v\n",
				f.ShrunkTree.NumAgents(), len(f.ShrunkTree.Cfg.Queues), *f.ShrunkTree)
			fmt.Fprintf(&cx, "// %s\n// findings: %s\n%#v\n\n", f, strings.Join(f.Findings, "; "), *f.ShrunkTree)
			continue
		}
		fmt.Printf("  replay: refcheck -trials 1 -seed %d -trial-offset %d\n", seed, f.Trial)
		fmt.Printf("  shrunk counterexample (%d agents, %d resources):\n%#v\n",
			f.Shrunk.NumAgents(), f.Shrunk.NumResources(), f.Shrunk)
		fmt.Fprintf(&cx, "// %s\n// findings: %s\n%#v\n\n", f, strings.Join(f.Findings, "; "), f.Shrunk)
	}
	if cxOut != "" {
		if werr := os.WriteFile(cxOut, []byte(cx.String()), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "refcheck: cx-out:", werr)
		} else {
			fmt.Printf("\ncounterexamples written to %s\n", cxOut)
		}
	}
	return fmt.Errorf("%d invariant violation(s)", len(sum.Failures))
}
