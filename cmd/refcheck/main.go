// Command refcheck runs the property-based correctness harness: N seeded
// random economies checked against every mechanism's invariant oracles —
// the paper's SI/EF/PE theorems, feasibility, CEEI and solver differential
// references, SPL gain bounds, and metamorphic symmetries. It prints any
// violations as minimized, ready-to-paste Go counterexamples and exits
// nonzero.
//
//	refcheck -trials 2000 -seed 1
//	refcheck -trials 1 -seed 1 -trial-offset 1234   # replay one failing trial
//	refcheck -trials 0 -solver-trials -1 -hier-trials -1 -credit-trials 500
//
// -credit-trials runs the repeated-game stream: each trial replays a
// random economy through a multi-round history under the time-aware
// credit ledger (random half-life, clamps, and settlement intervals),
// checking the weighted SI/EF audits every round and the long-run credit
// oracles over the whole history.
//
// -metrics-addr serves live Prometheus metrics for the duration of the
// run; -run-manifest writes a structured JSON record; -cx-out writes the
// shrunk counterexamples to a file (CI uploads it as an artifact on
// failure).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ref"
	"ref/internal/cliutil"
)

func main() {
	var (
		trials       = flag.Int("trials", 2000, "random economies to check against the closed-form mechanisms")
		trialOffset  = flag.Int("trial-offset", 0, "first trial index (replay a specific failing trial without the run before it)")
		maxAgents    = flag.Int("max-agents", 0, "max agents per economy (0 = default 64)")
		maxResources = flag.Int("max-resources", 0, "max resources per economy (0 = default 8)")
		solverTrials = flag.Int("solver-trials", 0, "trials for the iterative-solver subjects (0 = trials/50, negative disables)")
		hierTrials   = flag.Int("hier-trials", 0, "trials for the hierarchical queue-tree stream (0 = trials, negative disables)")
		simTrials    = flag.Int("sim-trials", 0, "trials whose economies are sim-backed 3-resource profile fits (0 disables)")
		simAccesses  = flag.Int("sim-accesses", 0, "per-configuration access budget for sim-backed profiling (0 = default 2000)")
		creditTrials = flag.Int("credit-trials", 0, "multi-round credit-ledger economies checked against the weighted and long-run oracles (0 disables)")
		creditRounds = flag.Int("credit-rounds", 0, "settlement rounds per credit trial (0 = default 12)")
		noShrink     = flag.Bool("no-shrink", false, "skip counterexample minimization")
		cxOut        = flag.String("cx-out", "", "write shrunk counterexamples (Go literals) to this path on failure")

		seed        int64
		parallelism int
		metricsAddr string
		manifestOut string
	)
	cliutil.SeedVar(flag.CommandLine, &seed, "base seed; every trial's economy derives deterministically from it")
	cliutil.ParallelismVar(flag.CommandLine, &parallelism)
	cliutil.MetricsAddrVar(flag.CommandLine, &metricsAddr)
	cliutil.RunManifestVar(flag.CommandLine, &manifestOut)
	flag.Parse()
	if err := run(*trials, seed, *trialOffset, *maxAgents, *maxResources, *solverTrials, *hierTrials,
		*simTrials, *simAccesses, *creditTrials, *creditRounds, parallelism, *noShrink,
		metricsAddr, manifestOut, *cxOut); err != nil {
		fmt.Fprintln(os.Stderr, "refcheck:", err)
		os.Exit(1)
	}
}

func run(trials int, seed int64, trialOffset, maxAgents, maxResources, solverTrials, hierTrials,
	simTrials, simAccesses, creditTrials, creditRounds, parallelism int, noShrink bool,
	metricsAddr, manifestOut, cxOut string) error {
	reg := ref.NewMetricsRegistry()
	ref.InstallMetrics(reg)
	var manifest *ref.RunManifest
	if manifestOut != "" {
		manifest = ref.NewRunManifest("refcheck", os.Args[1:])
		manifest.Parallelism = ref.ResolveParallelism(parallelism)
	}
	if metricsAddr != "" {
		srv, err := ref.ServeMetrics(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr())
	}

	cfg := ref.PropertyCheckConfig{
		Trials:       trials,
		Seed:         seed,
		TrialOffset:  trialOffset,
		MaxAgents:    maxAgents,
		MaxResources: maxResources,
		SolverTrials: solverTrials,
		HierTrials:   hierTrials,
		SimTrials:    simTrials,
		SimAccesses:  simAccesses,
		CreditTrials: creditTrials,
		CreditRounds: creditRounds,
		Parallelism:  parallelism,
		NoShrink:     noShrink,
	}
	start := time.Now()
	sum, err := ref.RunPropertyChecks(cfg)
	elapsed := time.Since(start)
	if manifest != nil {
		manifest.Record("check", elapsed.Seconds(), err)
		if werr := manifest.WriteFile(manifestOut); werr != nil {
			fmt.Fprintln(os.Stderr, "refcheck: manifest:", werr)
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("refcheck: %d fast + %d solver + %d sim + %d hier + %d credit trials, %d oracle evaluations in %s (seed %d)\n",
		sum.Trials, sum.SolverTrials, sum.SimTrials, sum.HierTrials, sum.CreditTrials,
		sum.Checks, elapsed.Round(time.Millisecond), seed)
	if sum.OK() {
		fmt.Println("refcheck: all properties hold")
		return nil
	}

	var cx strings.Builder
	for i, f := range sum.Failures {
		fmt.Printf("\nFAIL %d/%d: %s\n", i+1, len(sum.Failures), f)
		for _, finding := range f.Findings {
			fmt.Println("  " + finding)
		}
		if f.ShrunkTree != nil {
			// Hier-stream failures shrink to a queue-tree economy; replay
			// them by pinning the hier stream to the failing trial.
			fmt.Printf("  replay: refcheck -trials 1 -hier-trials 1 -seed %d -trial-offset %d\n", seed, f.Trial)
			fmt.Printf("  shrunk counterexample (%d agents, %d queues):\n%#v\n",
				f.ShrunkTree.NumAgents(), len(f.ShrunkTree.Cfg.Queues), *f.ShrunkTree)
			fmt.Fprintf(&cx, "// %s\n// findings: %s\n%#v\n\n", f, strings.Join(f.Findings, "; "), *f.ShrunkTree)
			continue
		}
		if f.Stream == "credit" {
			// Credit-stream failures need the credit stream alone: the
			// trial's economy, ledger parameters, and intervals all derive
			// from (seed, trial).
			fmt.Printf("  replay: refcheck -trials 0 -solver-trials -1 -hier-trials -1 -credit-trials 1 -seed %d -trial-offset %d\n",
				seed, f.Trial)
		} else {
			fmt.Printf("  replay: refcheck -trials 1 -seed %d -trial-offset %d\n", seed, f.Trial)
		}
		fmt.Printf("  shrunk counterexample (%d agents, %d resources):\n%#v\n",
			f.Shrunk.NumAgents(), f.Shrunk.NumResources(), f.Shrunk)
		fmt.Fprintf(&cx, "// %s\n// findings: %s\n%#v\n\n", f, strings.Join(f.Findings, "; "), f.Shrunk)
	}
	if cxOut != "" {
		if werr := os.WriteFile(cxOut, []byte(cx.String()), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "refcheck: cx-out:", werr)
		} else {
			fmt.Printf("\ncounterexamples written to %s\n", cxOut)
		}
	}
	return fmt.Errorf("%d invariant violation(s)", len(sum.Failures))
}
