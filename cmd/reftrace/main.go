// Command reftrace inspects the serve path's observability artifacts
// offline: a Chrome trace-event JSON export (from /debug/trace or a run
// manifest's trace section) or a flight-recorder payload (from
// /debug/ref/flightrecorder or an anomaly dump file). It prints a
// per-stage latency breakdown and, for flight-recorder input, an
// anomaly timeline of audit failures, shed spikes, and captured dumps.
//
//	curl -s localhost:9090/debug/trace > trace.json
//	reftrace trace.json
//
//	curl -s localhost:8080/debug/ref/flightrecorder > flightrec.json
//	reftrace -top 10 flightrec.json
//
// The input format is detected from the payload: a traceEvents key
// selects trace analysis, the ref/flightrec/v1 schema selects
// flight-recorder analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ref"
)

func main() {
	top := flag.Int("top", 5, "how many slowest spans / worst epochs to list")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reftrace [-top N] <trace.json | flightrec.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "reftrace:", err)
		os.Exit(1)
	}
	out, err := analyze(data, *top)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reftrace:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// analyze dispatches on the payload format and renders the report.
func analyze(data []byte, top int) (string, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("input is not a JSON object: %v", err)
	}
	if _, ok := probe["traceEvents"]; ok {
		var tr ref.ChromeTrace
		if err := json.Unmarshal(data, &tr); err != nil {
			return "", fmt.Errorf("bad Chrome trace: %v", err)
		}
		return analyzeTrace(&tr, top), nil
	}
	if schemaRaw, ok := probe["schema"]; ok {
		var schema string
		_ = json.Unmarshal(schemaRaw, &schema)
		if schema == "ref/flightrec/v1" {
			return analyzeFlight(data, top)
		}
		return "", fmt.Errorf("unsupported schema %q (want a Chrome trace or ref/flightrec/v1)", schema)
	}
	return "", fmt.Errorf("unrecognized input: neither a Chrome trace (traceEvents) nor a flight-recorder payload (schema)")
}

// spanStats aggregates one span name's durations.
type spanStats struct {
	name            string
	count           int
	total, min, max float64 // microseconds
}

// analyzeTrace renders a per-span-name latency breakdown plus the
// slowest individual spans.
func analyzeTrace(tr *ref.ChromeTrace, top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events\n", len(tr.TraceEvents))
	if len(tr.TraceEvents) == 0 {
		return b.String()
	}
	byName := map[string]*spanStats{}
	for _, e := range tr.TraceEvents {
		st, ok := byName[e.Name]
		if !ok {
			st = &spanStats{name: e.Name, min: e.Dur}
			byName[st.name] = st
		}
		st.count++
		st.total += e.Dur
		if e.Dur < st.min {
			st.min = e.Dur
		}
		if e.Dur > st.max {
			st.max = e.Dur
		}
	}
	names := make([]*spanStats, 0, len(byName))
	for _, st := range byName {
		names = append(names, st)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].total > names[j].total })

	fmt.Fprintf(&b, "\n%-32s %8s %12s %12s %12s %12s\n", "span", "count", "total", "mean", "min", "max")
	for _, st := range names {
		fmt.Fprintf(&b, "%-32s %8d %12s %12s %12s %12s\n", st.name, st.count,
			us(st.total), us(st.total/float64(st.count)), us(st.min), us(st.max))
	}

	slow := append([]ref.ChromeTraceEvent(nil), tr.TraceEvents...)
	sort.Slice(slow, func(i, j int) bool { return slow[i].Dur > slow[j].Dur })
	if top > len(slow) {
		top = len(slow)
	}
	fmt.Fprintf(&b, "\nslowest spans:\n")
	for _, e := range slow[:top] {
		fmt.Fprintf(&b, "  %-32s %12s  ts=%s", e.Name, us(e.Dur), us(e.Ts))
		if p, ok := e.Args["parent"]; ok {
			fmt.Fprintf(&b, "  parent=%.0f", p)
		}
		if ep, ok := e.Args["epoch"]; ok {
			fmt.Fprintf(&b, "  epoch=%.0f", ep)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// flightPayload is the common shape of flight-recorder snapshots and
// dump files: both carry records; snapshots additionally carry dumps.
type flightPayload struct {
	Schema  string                  `json:"schema"`
	Enabled *bool                   `json:"enabled"`
	Reason  string                  `json:"reason"`
	Time    string                  `json:"time"`
	Records []ref.EpochFlightRecord `json:"records"`
	Dumps   []flightDumpHead        `json:"dumps"`
}

// flightDumpHead is a dump's header inside a snapshot payload.
type flightDumpHead struct {
	Reason  string                  `json:"reason"`
	Time    string                  `json:"time"`
	Seq     uint64                  `json:"seq"`
	File    string                  `json:"file"`
	Records []ref.EpochFlightRecord `json:"records"`
}

// analyzeFlight renders the per-stage breakdown across epoch records and
// the anomaly timeline.
func analyzeFlight(data []byte, top int) (string, error) {
	var p flightPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return "", fmt.Errorf("bad flight-recorder payload: %v", err)
	}
	var b strings.Builder
	switch {
	case p.Reason != "":
		fmt.Fprintf(&b, "flight-recorder dump: reason=%s time=%s (%d records)\n", p.Reason, p.Time, len(p.Records))
	case p.Enabled != nil && !*p.Enabled:
		return "flight recorder: disabled\n", nil
	default:
		fmt.Fprintf(&b, "flight recorder: %d records, %d dumps\n", len(p.Records), len(p.Dumps))
	}
	if len(p.Records) == 0 {
		return b.String(), nil
	}

	stages := []struct {
		name string
		get  func(ref.EpochFlightRecord) float64
	}{
		{"apply", func(r ref.EpochFlightRecord) float64 { return r.ApplySeconds }},
		{"allocate", func(r ref.EpochFlightRecord) float64 { return r.AllocateSeconds }},
		{"audit", func(r ref.EpochFlightRecord) float64 { return r.AuditSeconds }},
		{"publish", func(r ref.EpochFlightRecord) float64 { return r.PublishSeconds }},
		{"total", func(r ref.EpochFlightRecord) float64 { return r.TotalSeconds }},
	}
	first, last := p.Records[0], p.Records[len(p.Records)-1]
	fmt.Fprintf(&b, "epochs %d..%d, agents %d..%d\n", first.Epoch, last.Epoch, first.Agents, last.Agents)
	fmt.Fprintf(&b, "\n%-10s %12s %12s %12s\n", "stage", "mean", "max", "sum")
	for _, st := range stages {
		var sum, max float64
		for _, r := range p.Records {
			v := st.get(r)
			sum += v
			if v > max {
				max = v
			}
		}
		fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", st.name,
			secs(sum/float64(len(p.Records))), secs(max), secs(sum))
	}

	worst := append([]ref.EpochFlightRecord(nil), p.Records...)
	sort.Slice(worst, func(i, j int) bool { return worst[i].TotalSeconds > worst[j].TotalSeconds })
	if top > len(worst) {
		top = len(worst)
	}
	fmt.Fprintf(&b, "\nworst epochs by total:\n")
	for _, r := range worst[:top] {
		fmt.Fprintf(&b, "  epoch %-8d total=%s batch=%d agents=%d audit=%s\n",
			r.Epoch, secs(r.TotalSeconds), r.BatchSize, r.Agents, r.AuditMode)
	}

	fmt.Fprintf(&b, "\nanomaly timeline:\n")
	anomalies := 0
	for _, r := range p.Records {
		var notes []string
		if r.AuditMode != "none" && !(r.SI && r.EF && r.PE) {
			notes = append(notes, fmt.Sprintf("AUDIT FAILURE si=%t ef=%t pe=%t (%d violations)", r.SI, r.EF, r.PE, r.Violations))
		}
		if r.Shed > 0 {
			notes = append(notes, fmt.Sprintf("shed %d writes", r.Shed))
		}
		if r.Resummed {
			notes = append(notes, "exact resummation")
		}
		if len(notes) == 0 {
			continue
		}
		anomalies++
		fmt.Fprintf(&b, "  epoch %-8d %s  %s\n", r.Epoch, r.Time, strings.Join(notes, "; "))
	}
	for _, d := range p.Dumps {
		anomalies++
		span := ""
		if len(d.Records) > 0 {
			span = fmt.Sprintf(" epochs %d..%d", d.Records[0].Epoch, d.Records[len(d.Records)-1].Epoch)
		}
		file := ""
		if d.File != "" {
			file = " file=" + d.File
		}
		fmt.Fprintf(&b, "  dump  seq=%-6d %s  reason=%s%s%s\n", d.Seq, d.Time, d.Reason, span, file)
	}
	if anomalies == 0 {
		fmt.Fprintf(&b, "  (none)\n")
	}
	return b.String(), nil
}

// us renders a microsecond quantity human-readably.
func us(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3fs", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3fms", v/1e3)
	default:
		return fmt.Sprintf("%.1fµs", v)
	}
}

// secs renders a seconds quantity human-readably.
func secs(v float64) string { return us(v * 1e6) }
