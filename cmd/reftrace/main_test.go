package main

import (
	"strings"
	"testing"
)

const sampleTrace = `{
  "traceEvents": [
    {"name": "ref_serve_epoch", "ph": "X", "ts": 0, "dur": 1500, "pid": 1, "tid": 1,
     "args": {"span": 7, "epoch": 3, "batch": 2}},
    {"name": "ref_serve_epoch_apply", "ph": "X", "ts": 0, "dur": 400, "pid": 1, "tid": 1,
     "args": {"parent": 7, "epoch": 3}},
    {"name": "ref_serve_epoch_audit", "ph": "X", "ts": 400, "dur": 1100, "pid": 1, "tid": 1,
     "args": {"parent": 7, "epoch": 3}}
  ],
  "displayTimeUnit": "ms"
}`

const sampleFlight = `{
  "schema": "ref/flightrec/v1",
  "enabled": true,
  "size": 8,
  "seq": 3,
  "records": [
    {"epoch": 1, "time": "2026-08-08T00:00:01Z", "agents": 10, "batch_size": 10,
     "applied": 10, "rejected": 0, "apply_seconds": 0.001, "allocate_seconds": 0.002,
     "audit_seconds": 0.003, "publish_seconds": 0.0005, "total_seconds": 0.007,
     "audit_mode": "exact", "si": true, "ef": true, "pe": true},
    {"epoch": 2, "time": "2026-08-08T00:00:02Z", "agents": 10, "batch_size": 0,
     "applied": 0, "rejected": 0, "apply_seconds": 0.001, "allocate_seconds": 0.002,
     "audit_seconds": 0.009, "publish_seconds": 0.0005, "total_seconds": 0.013,
     "audit_mode": "sampled", "si": false, "ef": true, "pe": true,
     "violations": 2, "sample_size": 4, "si_margin_min": -0.25, "shed": 300}
  ],
  "dumps": [
    {"schema": "ref/flightrec/v1", "reason": "audit_failure",
     "time": "2026-08-08T00:00:02Z", "seq": 2,
     "records": [{"epoch": 2, "audit_mode": "sampled", "si": false, "ef": true, "pe": true}]}
  ]
}`

func TestAnalyzeTrace(t *testing.T) {
	out, err := analyze([]byte(sampleTrace), 5)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for _, want := range []string{
		"trace: 3 events",
		"ref_serve_epoch",
		"ref_serve_epoch_audit",
		"slowest spans:",
		"parent=7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeFlight(t *testing.T) {
	out, err := analyze([]byte(sampleFlight), 5)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for _, want := range []string{
		"flight recorder: 2 records, 1 dumps",
		"epochs 1..2",
		"audit",
		"worst epochs by total:",
		"anomaly timeline:",
		"AUDIT FAILURE si=false ef=true pe=true (2 violations)",
		"shed 300 writes",
		"reason=audit_failure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("flight report missing %q:\n%s", want, out)
		}
	}
	// Epoch 2 is the slowest; it should lead the worst list.
	worst := out[strings.Index(out, "worst epochs"):]
	if !strings.Contains(strings.SplitN(worst, "\n", 3)[1], "epoch 2") {
		t.Errorf("expected epoch 2 to top the worst list:\n%s", worst)
	}
}

func TestAnalyzeFlightDumpFile(t *testing.T) {
	dump := `{"schema": "ref/flightrec/v1", "reason": "latency_breach",
	  "time": "2026-08-08T00:00:05Z", "seq": 9,
	  "records": [{"epoch": 5, "total_seconds": 0.5, "audit_mode": "exact",
	    "si": true, "ef": true, "pe": true, "agents": 3, "batch_size": 1}]}`
	out, err := analyze([]byte(dump), 3)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !strings.Contains(out, "flight-recorder dump: reason=latency_breach") {
		t.Errorf("dump header missing:\n%s", out)
	}
	if !strings.Contains(out, "epoch 5") {
		t.Errorf("dump record missing:\n%s", out)
	}
}

func TestAnalyzeDisabledRecorder(t *testing.T) {
	out, err := analyze([]byte(`{"schema": "ref/flightrec/v1", "enabled": false}`), 3)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !strings.Contains(out, "disabled") {
		t.Errorf("want disabled notice, got:\n%s", out)
	}
}

func TestAnalyzeRejectsUnknownInput(t *testing.T) {
	if _, err := analyze([]byte(`{"foo": 1}`), 3); err == nil {
		t.Error("unrecognized object should error")
	}
	if _, err := analyze([]byte(`{"schema": "other/v9"}`), 3); err == nil {
		t.Error("unknown schema should error")
	}
	if _, err := analyze([]byte(`not json`), 3); err == nil {
		t.Error("non-JSON should error")
	}
}

func TestEmptyTrace(t *testing.T) {
	out, err := analyze([]byte(`{"traceEvents": [], "displayTimeUnit": "ms"}`), 3)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !strings.Contains(out, "trace: 0 events") {
		t.Errorf("want empty-trace header, got:\n%s", out)
	}
}
