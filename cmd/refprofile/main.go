// Command refprofile analyzes a performance profile: it fits the
// Cobb-Douglas utility (Equation 16), cross-validates it out of sample,
// reports the rescaled elasticities and C/M classification, and contrasts
// the fit against the best grid-searched Leontief alternative (§2).
//
// Profiles come from a CSV written by `refsim -csv` (or any tool emitting
// resource columns followed by a perf column), or are generated on the fly
// for a catalog workload:
//
//	refprofile -in profile.csv
//	refprofile -w dedup -accesses 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"ref"
)

func main() {
	var (
		in       = flag.String("in", "", "CSV profile to analyze")
		name     = flag.String("w", "", "catalog workload to sweep and analyze")
		accesses = flag.Int("accesses", 20000, "accesses per configuration when sweeping")
		leontief = flag.Int("leontief", 17, "Leontief grid-search resolution (0 disables the comparison)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "refprofile: %v\n", err)
		os.Exit(1)
	}

	var prof *ref.Profile
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		prof, err = ref.ReadProfileCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
	case *name != "":
		w, err := ref.LookupWorkload(*name)
		if err != nil {
			fail(err)
		}
		prof, err = ref.SweepWorkload(w.Config, *accesses)
		if err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "refprofile: need -in <csv> or -w <workload> (see -h)")
		os.Exit(2)
	}

	res, err := ref.FitCobbDouglas(prof)
	if err != nil {
		fail(err)
	}
	fmt.Printf("samples            : %d over %d resources\n", len(prof.Samples), prof.NumResources())
	fmt.Printf("fitted utility     : u = %s\n", res.Utility)
	fmt.Printf("in-sample          : R²=%.3f RMSLE=%.4f\n", res.R2, res.RMSLE)

	if cv, err := ref.CrossValidateFit(prof); err == nil {
		fmt.Printf("leave-one-out      : R²=%.3f RMSLE=%.4f worst |log err|=%.4f\n",
			cv.R2, cv.RMSLE, cv.MaxAbsLogErr)
	} else {
		fmt.Printf("leave-one-out      : unavailable (%v)\n", err)
	}

	r := res.Utility.Rescaled()
	fmt.Printf("rescaled α         :")
	for j, a := range r.Alpha {
		fmt.Printf(" α%d=%.3f", j, a)
	}
	fmt.Println()
	if prof.NumResources() == 2 {
		class := "M (bandwidth-preferring)"
		if r.Alpha[1] > 0.5 {
			class = "C (cache-preferring)"
		}
		fmt.Printf("classification     : %s\n", class)
	}

	if *leontief > 1 {
		lt, err := ref.FitLeontief(prof, *leontief)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Leontief best fit  : R²=%.3f (demand ratio", lt.R2)
		for _, d := range lt.Utility.Demand {
			fmt.Printf(" %.3g", d)
		}
		fmt.Println(") — §2's substitutability argument in numbers")
	}
}
