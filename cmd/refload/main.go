// Command refload is an open-loop load generator for the allocation
// service: it ramps a population of tenants into a server, then drives a
// timed mixed workload (join/leave/update/read) at a target arrival
// rate, measuring per-operation latency histograms and — in in-process
// mode — the server's own epoch-latency histogram, isolated to the
// timed phase. On exit it writes a run manifest whose records carry the
// interpolated latency percentiles, so CI can assert a p99 bound with a
// JSON query instead of scraping stdout.
//
//	refload -inproc -cap 24,12 -ramp 1000000 -rate 2000 -duration 30s \
//	        -run-manifest refload.json
//	refload -addr 127.0.0.1:8080 -rate 500 -duration 10s
//
// In-process mode (-inproc) boots the allocation server inside the
// generator and drives its Go API directly — no sockets, no JSON — which
// is what makes a million-agent ramp practical on a small machine; it is
// the mode the scale benchmarks use. HTTP mode (-addr) exercises the
// full wire path against an external refserve; epoch percentiles are
// not reported there because the server's registry is remote.
//
// The generator is open-loop: operations are dispatched on a fixed
// schedule derived from -rate regardless of how long earlier operations
// take, so a slow server accumulates latency instead of silently
// slowing the offered load. In-flight operations are bounded by
// -max-inflight; when the bound is hit the generator falls behind
// schedule rather than queueing unboundedly, and the achieved rate in
// the summary exposes the gap.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ref"
	"ref/internal/cliutil"
)

func main() {
	var (
		addr        = flag.String("addr", "", "drive an external server at this address over HTTP")
		inproc      = flag.Bool("inproc", false, "boot the allocation server in-process and drive its Go API")
		capStr      = flag.String("cap", "24,12", "total capacity per resource for -inproc, e.g. 24,12")
		rate        = flag.Float64("rate", 1000, "target operations per second for the timed phase")
		duration    = flag.Duration("duration", 10*time.Second, "timed-phase length")
		mixStr      = flag.String("mix", "join=1,leave=1,update=2,read=6", "operation mix as op=weight pairs")
		ramp        = flag.Int("ramp", 0, "join this many agents before the timed phase starts")
		maxInflight = flag.Int("max-inflight", 512, "bound on concurrently outstanding operations")
		shards      = flag.Int("shards", 256, "agent-table shards for -inproc")
		maxBatch    = flag.Int("max-batch", 1024, "mutations per epoch for -inproc")
		window      = flag.Duration("epoch-window", 10*time.Millisecond, "epoch batching window for -inproc")
		auditSample = flag.Int("audit-sample", 64, "sampled-audit window size for -inproc")
		drainWait   = flag.Duration("drain-timeout", 60*time.Second, "how long the final drain may take")
		traceEvents = flag.Int("trace", 0, "retain the last N trace spans and embed them in the manifest (0 = off)")
		flightRec   = flag.Int("flight-recorder", 0, "epoch flight-recorder ring size for -inproc (0 = off)")
		sloEpoch    = flag.Duration("slo-epoch", 0, "epoch-latency SLO threshold for -inproc; the run fails if the error budget burns over 1× (0 = no SLO)")
		sloBudget   = flag.Float64("slo-budget", 0.01, "fraction of epochs allowed over the SLO threshold")

		seed        int64
		parallelism int
		manifestOut string
		credit      cliutil.CreditFlags
	)
	cliutil.SeedVar(flag.CommandLine, &seed, "PRNG seed for the operation schedule and elasticities")
	cliutil.ParallelismVar(flag.CommandLine, &parallelism)
	cliutil.RunManifestVar(flag.CommandLine, &manifestOut)
	cliutil.CreditVar(flag.CommandLine, &credit)
	flag.Parse()
	obsOpts := obsOptions{
		traceEvents: *traceEvents,
		flightRec:   *flightRec,
		sloEpoch:    *sloEpoch,
		sloBudget:   *sloBudget,
	}
	if err := run(*addr, *capStr, *mixStr, *rate, *duration, *ramp, seed,
		*maxInflight, *shards, *maxBatch, *auditSample, parallelism,
		*window, *drainWait, *inproc, manifestOut, credit, obsOpts); err != nil {
		fmt.Fprintln(os.Stderr, "refload:", err)
		os.Exit(1)
	}
}

// obsOptions bundles refload's observability flags.
type obsOptions struct {
	traceEvents int
	flightRec   int
	sloEpoch    time.Duration
	sloBudget   float64
}

// opKind enumerates the workload operations.
type opKind int

const (
	opJoin opKind = iota
	opLeave
	opUpdate
	opRead
	numOps
)

var opNames = [numOps]string{"join", "leave", "update", "read"}

// errMiss marks an operation that raced a concurrent leave: the name it
// picked from the live pool was gone by the time the server saw it.
// Misses are counted, not treated as failures — they are inherent to a
// mixed workload, not a server defect.
var errMiss = errors.New("agent already left")

// target abstracts the two drive modes behind the four operations.
type target interface {
	join(name string, elast []float64) error
	update(name string, elast []float64) error
	leave(name string) error
	read(name string) error
}

// inprocTarget drives an in-process allocation server's Go API.
type inprocTarget struct {
	srv *ref.AllocationServer
}

func (t *inprocTarget) join(name string, elast []float64) error {
	u, err := ref.NewUtility(1, elast...)
	if err != nil {
		return err
	}
	_, _, _, apiErr := t.srv.Join(context.Background(), ref.WireAgent{Name: name, Alpha0: 1, Elasticities: elast}, u)
	if apiErr != nil {
		return apiErr
	}
	return nil
}

func (t *inprocTarget) update(name string, elast []float64) error {
	u, err := ref.NewUtility(1, elast...)
	if err != nil {
		return err
	}
	_, _, _, apiErr := t.srv.Update(context.Background(), ref.WireAgent{Name: name, Alpha0: 1, Elasticities: elast}, u)
	if apiErr != nil {
		if apiErr.Code == ref.CodeUnknownAgent {
			return errMiss
		}
		return apiErr
	}
	return nil
}

func (t *inprocTarget) leave(name string) error {
	if _, apiErr := t.srv.Leave(context.Background(), name); apiErr != nil {
		if apiErr.Code == ref.CodeUnknownAgent {
			return errMiss
		}
		return apiErr
	}
	return nil
}

func (t *inprocTarget) read(name string) error {
	if t.srv.AgentRow(name) == nil {
		return errMiss
	}
	return nil
}

// httpTarget drives an external server over the JSON HTTP API.
type httpTarget struct {
	base   string
	client *http.Client
}

func newHTTPTarget(addr string, maxInflight int) *httpTarget {
	return &httpTarget{
		base: "http://" + addr,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        maxInflight,
			MaxIdleConnsPerHost: maxInflight,
		}},
	}
}

// do issues one request and maps the response: 2xx → nil, 404 → errMiss,
// anything else → the server's typed error envelope.
func (t *httpTarget) do(method, path string, body any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = strings.NewReader(string(data))
	}
	req, err := http.NewRequest(method, t.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Drain so the connection returns to the keep-alive pool.
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	if resp.StatusCode == http.StatusNotFound {
		return errMiss
	}
	var e ref.ServeError
	if json.Unmarshal(payload, &struct {
		Error *ref.ServeError `json:"error"`
	}{&e}) == nil && e.Code != "" {
		return &e
	}
	return fmt.Errorf("HTTP %d from %s %s", resp.StatusCode, method, path)
}

type wireBody struct {
	Name         string    `json:"name,omitempty"`
	Alpha0       float64   `json:"alpha0,omitempty"`
	Elasticities []float64 `json:"elasticities"`
}

func (t *httpTarget) join(name string, elast []float64) error {
	return t.do(http.MethodPost, "/v1/agents", wireBody{Name: name, Alpha0: 1, Elasticities: elast})
}

func (t *httpTarget) update(name string, elast []float64) error {
	return t.do(http.MethodPatch, "/v1/agents/"+name, wireBody{Alpha0: 1, Elasticities: elast})
}

func (t *httpTarget) leave(name string) error {
	return t.do(http.MethodDelete, "/v1/agents/"+name, nil)
}

func (t *httpTarget) read(name string) error {
	return t.do(http.MethodGet, "/v1/allocation?agent="+name, nil)
}

// pool is the live-name set the workload draws from: O(1) random pick,
// O(1) swap-delete take. Its internal PRNG is guarded by the same mutex
// as the slice, so concurrent completions can add/take safely.
type pool struct {
	mu    sync.Mutex
	rng   *rand.Rand
	names []string
	idx   map[string]int
}

func newPool(seed int64, capacity int) *pool {
	return &pool{
		rng:   rand.New(rand.NewSource(seed)),
		names: make([]string, 0, capacity),
		idx:   make(map[string]int, capacity),
	}
}

func (p *pool) add(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.idx[name]; ok {
		return
	}
	p.idx[name] = len(p.names)
	p.names = append(p.names, name)
}

func (p *pool) pick() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.names) == 0 {
		return "", false
	}
	return p.names[p.rng.Intn(len(p.names))], true
}

// take removes and returns a random live name, so no two leave
// operations ever target the same agent.
func (p *pool) take() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.names) == 0 {
		return "", false
	}
	i := p.rng.Intn(len(p.names))
	name := p.names[i]
	last := len(p.names) - 1
	p.names[i] = p.names[last]
	p.idx[p.names[i]] = i
	p.names = p.names[:last]
	delete(p.idx, name)
	return name, true
}

func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.names)
}

// parseMix parses "join=1,leave=1,update=2,read=6" into per-op weights.
func parseMix(s string) ([numOps]float64, error) {
	var mix [numOps]float64
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return mix, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return mix, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for k, name := range opNames {
			if name == kv[0] {
				mix[k] = w
				found = true
			}
		}
		if !found {
			return mix, fmt.Errorf("unknown op %q (have join, leave, update, read)", kv[0])
		}
	}
	total := 0.0
	for _, w := range mix {
		total += w
	}
	if total <= 0 {
		return mix, fmt.Errorf("mix %q has no positive weight", s)
	}
	return mix, nil
}

// gen owns the shared workload state.
type gen struct {
	tgt     target
	pool    *pool
	sem     chan struct{}
	wg      sync.WaitGroup
	joinSeq atomic.Uint64
	nRes    int

	opHist [numOps]histRecorder
	errs   atomic.Uint64
	misses atomic.Uint64
	ops    [numOps]atomic.Uint64
}

// histRecorder is the minimal surface refload needs from a histogram.
type histRecorder interface{ Observe(float64) }

// randElast draws a fresh elasticity vector; entries stay well away from
// zero so every utility validates.
func randElast(rng *rand.Rand, nRes int) []float64 {
	elast := make([]float64, nRes)
	for r := range elast {
		elast[r] = 0.1 + 0.9*rng.Float64()
	}
	return elast
}

// dispatch runs one operation asynchronously, bounded by the in-flight
// semaphore. The operation kind and the fresh elasticity vector are
// decided by the caller (single-threaded schedule PRNG); name picks
// happen inside the goroutine against the live pool.
func (g *gen) dispatch(kind opKind, elast []float64) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() { <-g.sem; g.wg.Done() }()
		// An empty pool turns pool-dependent ops into joins so the
		// workload can bootstrap itself without a ramp.
		name, ok := "", false
		switch kind {
		case opLeave:
			name, ok = g.pool.take()
		case opUpdate, opRead:
			name, ok = g.pool.pick()
		}
		if kind != opJoin && !ok {
			kind = opJoin
		}
		if kind == opJoin {
			name = fmt.Sprintf("load-%09d", g.joinSeq.Add(1))
		}
		start := time.Now()
		var err error
		switch kind {
		case opJoin:
			err = g.tgt.join(name, elast)
		case opLeave:
			err = g.tgt.leave(name)
		case opUpdate:
			err = g.tgt.update(name, elast)
		case opRead:
			err = g.tgt.read(name)
		}
		g.opHist[kind].Observe(time.Since(start).Seconds())
		g.ops[kind].Add(1)
		switch {
		case err == nil:
			if kind == opJoin {
				g.pool.add(name)
			}
		case errors.Is(err, errMiss):
			g.misses.Add(1)
		default:
			g.errs.Add(1)
		}
	}()
}

// diffHist isolates the samples observed between two snapshots of the
// same cumulative histogram: bucket-by-bucket count subtraction, aligned
// by upper bound (both snapshots share the registry's bucket ladder;
// compaction only trims all-zero prefixes/suffixes).
func diffHist(pre, post ref.LatencyHistogram) ref.LatencyHistogram {
	cumAt := func(ub float64) uint64 {
		var c uint64
		for _, b := range pre.Buckets {
			if b.UpperBound <= ub {
				c = b.CumulativeCount
			} else {
				break
			}
		}
		return c
	}
	d := ref.LatencyHistogram{
		Count: post.Count - pre.Count,
		Sum:   post.Sum - pre.Sum,
		Min:   post.Min,
		Max:   post.Max,
	}
	for _, b := range post.Buckets {
		d.Buckets = append(d.Buckets, ref.HistogramBucket{
			UpperBound:      b.UpperBound,
			CumulativeCount: b.CumulativeCount - cumAt(b.UpperBound),
		})
	}
	return d
}

func run(addr, capStr, mixStr string, rate float64, duration time.Duration, ramp int, seed int64,
	maxInflight, shards, maxBatch, auditSample, parallelism int,
	window, drainWait time.Duration, inproc bool, manifestOut string,
	credit cliutil.CreditFlags, obsOpts obsOptions) error {
	if inproc == (addr != "") {
		return fmt.Errorf("need exactly one of -inproc or -addr")
	}
	if err := credit.Validate(); err != nil {
		return err
	}
	if credit.Enabled() && !inproc {
		return fmt.Errorf("-half-life shapes the in-process server; in HTTP mode start refserve with it instead")
	}
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return fmt.Errorf("bad -rate %v", rate)
	}
	if maxInflight < 1 {
		return fmt.Errorf("bad -max-inflight %d", maxInflight)
	}
	mix, err := parseMix(mixStr)
	if err != nil {
		return err
	}

	reg := ref.NewMetricsRegistry()
	ref.InstallMetrics(reg)
	if obsOpts.traceEvents > 0 {
		ref.InstallTracer(ref.NewTracer(obsOpts.traceEvents))
	}
	var manifest *ref.RunManifest
	if manifestOut != "" {
		manifest = ref.NewRunManifest("refload", os.Args[1:])
		manifest.Parallelism = ref.ResolveParallelism(parallelism)
	}

	var tgt target
	var srv *ref.AllocationServer
	nRes := 2
	if inproc {
		capacity, err := cliutil.ParseFloats(capStr)
		if err != nil {
			return err
		}
		nRes = len(capacity)
		srv, err = ref.NewAllocationServer(ref.ServeConfig{
			Capacity:        capacity,
			Window:          window,
			MaxBatch:        maxBatch,
			Parallelism:     parallelism,
			Shards:          shards,
			AuditSample:     auditSample,
			FlightRecorder:  obsOpts.flightRec,
			SLOEpochLatency: obsOpts.sloEpoch,
			SLOBudget:       obsOpts.sloBudget,
			CreditHalfLife:  credit.HalfLife,
			CreditMinBudget: credit.MinBudget,
			CreditMaxBudget: credit.MaxBudget,
		})
		if err != nil {
			return err
		}
		tgt = &inprocTarget{srv: srv}
		fmt.Printf("refload: in-process server up (capacity %v, %d shards, max batch %d)\n",
			capacity, shards, maxBatch)
	} else {
		ht := newHTTPTarget(addr, maxInflight)
		tgt = ht
		// Probe the capacity so elasticity vectors have the right arity.
		resp, err := ht.client.Get(ht.base + "/v1/allocation")
		if err != nil {
			return fmt.Errorf("probing %s: %v", addr, err)
		}
		var snap struct {
			Capacity []float64 `json:"capacity"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap)
		resp.Body.Close()
		if err != nil || len(snap.Capacity) == 0 {
			return fmt.Errorf("probing %s: no capacity in snapshot (%v)", addr, err)
		}
		nRes = len(snap.Capacity)
		fmt.Printf("refload: driving http://%s (capacity %v)\n", addr, snap.Capacity)
	}

	g := &gen{
		tgt:  tgt,
		pool: newPool(seed+1, ramp+1024),
		sem:  make(chan struct{}, maxInflight),
		nRes: nRes,
	}
	for k := range g.opHist {
		g.opHist[k] = reg.Histogram("refload_" + opNames[opKind(k)] + "_seconds")
	}
	rng := rand.New(rand.NewSource(seed))

	// Ramp: join the initial population as fast as the in-flight bound
	// allows. Names are distinct from the timed phase's join sequence.
	if ramp > 0 {
		fmt.Printf("refload: ramping %d agents\n", ramp)
		rampStart := time.Now()
		for i := 0; i < ramp; i++ {
			name := fmt.Sprintf("ramp-%09d", i)
			elast := randElast(rng, nRes)
			g.sem <- struct{}{}
			g.wg.Add(1)
			go func() {
				defer func() { <-g.sem; g.wg.Done() }()
				if err := tgt.join(name, elast); err != nil {
					g.errs.Add(1)
				} else {
					g.pool.add(name)
				}
			}()
		}
		g.wg.Wait()
		rampSecs := time.Since(rampStart).Seconds()
		fmt.Printf("refload: ramp done in %.2fs (%d live agents, %.0f joins/s)\n",
			rampSecs, g.pool.size(), float64(ramp)/rampSecs)
		if manifest != nil {
			manifest.Record("ramp", rampSecs, nil)
		}
	}

	// Snapshot the epoch histogram so the timed phase's percentiles are
	// computed over its own epochs, not the ramp's.
	var epochPre ref.LatencyHistogram
	if inproc {
		epochPre = ref.SnapshotMetrics().Histograms[ref.MetricEpochSeconds]
	}

	// Timed phase: fixed-schedule open loop.
	cum := mix
	for k := 1; k < int(numOps); k++ {
		cum[k] += cum[k-1]
	}
	interval := time.Duration(float64(time.Second) / rate)
	fmt.Printf("refload: open loop at %.0f ops/s for %s (mix %s)\n", rate, duration, mixStr)
	phaseStart := time.Now()
	next := phaseStart
	dispatched := 0
	for time.Since(phaseStart) < duration {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		pick := rng.Float64() * cum[numOps-1]
		kind := opRead
		for k := opJoin; k < numOps; k++ {
			if pick < cum[k] {
				kind = k
				break
			}
		}
		// Every op carries fresh elasticities: joins and updates use
		// them, and leave/read need them if an empty pool demotes the op
		// to a bootstrap join.
		g.dispatch(kind, randElast(rng, nRes))
		dispatched++
	}
	g.wg.Wait()
	phaseSecs := time.Since(phaseStart).Seconds()
	if manifest != nil {
		manifest.Record("load", phaseSecs, nil)
	}

	// Drain before reading final metrics so every accepted mutation's
	// epoch is in the histograms.
	var drainErr error
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		drainErr = srv.Close(ctx)
		cancel()
		if manifest != nil {
			manifest.Record("drain", 0, drainErr)
		}
	}

	snap := ref.SnapshotMetrics()
	fmt.Printf("refload: %d ops in %.2fs (%.0f/s achieved, target %.0f/s), %d live agents, %d misses, %d errors\n",
		dispatched, phaseSecs, float64(dispatched)/phaseSecs, rate,
		g.pool.size(), g.misses.Load(), g.errs.Load())
	for k := opJoin; k < numOps; k++ {
		h, ok := snap.Histograms["refload_"+opNames[k]+"_seconds"]
		if !ok || h.Count == 0 {
			continue
		}
		p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
		fmt.Printf("refload: %-6s n=%-8d p50=%-10s p99=%-10s max=%s\n",
			opNames[k], h.Count, fmtDur(p50), fmtDur(p99), fmtDur(h.Max))
		if manifest != nil {
			manifest.Record("p50:"+opNames[k], p50, nil)
			manifest.Record("p99:"+opNames[k], p99, nil)
		}
	}
	if inproc {
		all := snap.Histograms[ref.MetricEpochSeconds]
		phase := diffHist(epochPre, all)
		if phase.Count > 0 {
			p50, p99 := phase.Quantile(0.5), phase.Quantile(0.99)
			fmt.Printf("refload: epoch  n=%-8d p50=%-10s p99=%-10s max=%s (timed phase)\n",
				phase.Count, fmtDur(p50), fmtDur(p99), fmtDur(phase.Max))
			if manifest != nil {
				manifest.Record("p50:epoch", p50, nil)
				manifest.Record("p99:epoch", p99, nil)
			}
		}
		if all.Count > 0 && manifest != nil {
			manifest.Record("p99:epoch:all", all.Quantile(0.99), nil)
		}
	}
	// The SLO verdict is an assertion, not just telemetry: a burn rate
	// over 1 means the run spent more than its whole error budget, and
	// refload exits nonzero so CI fails on the latency regression.
	var sloErr error
	if srv != nil {
		if slo, ok := srv.SLOStats(); ok {
			fmt.Printf("refload: SLO %s: %d good, %d bad, burn rate %.3f\n",
				slo.Name, slo.Good, slo.Bad, slo.BurnRate)
			if manifest != nil {
				manifest.SLO = append(manifest.SLO, slo)
			}
			if slo.BurnRate > 1 {
				sloErr = fmt.Errorf("SLO %s burned %.3f× its error budget (%d/%d epochs over threshold)",
					slo.Name, slo.BurnRate, slo.Bad, slo.Good+slo.Bad)
			}
		}
		fs := srv.FlightState()
		if fs.Enabled && len(fs.Dumps) > 0 {
			fmt.Printf("refload: flight recorder captured %d anomaly dumps\n", len(fs.Dumps))
			for _, d := range fs.Dumps {
				fmt.Printf("refload:   dump seq=%d reason=%s (%d records)\n", d.Seq, d.Reason, len(d.Records))
			}
		}
	}
	if manifest != nil {
		manifest.AttachTrace(ref.InstalledTracer())
		if werr := manifest.WriteFile(manifestOut); werr != nil {
			return werr
		}
		fmt.Printf("refload: run manifest written to %s\n", manifestOut)
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	if sloErr != nil {
		return sloErr
	}
	if e := g.errs.Load(); e > 0 {
		return fmt.Errorf("%d operations failed", e)
	}
	return nil
}

// fmtDur renders a latency in seconds at a readable precision.
func fmtDur(secs float64) string {
	return time.Duration(secs * float64(time.Second)).Round(time.Microsecond).String()
}
