// Command refalloc computes a fair multi-resource allocation with the REF
// proportional elasticity mechanism from user-supplied agents, and audits
// the game-theoretic properties of the result.
//
// Agents are given as repeated -agent flags, each "name:α1,α2,...", with
// one elasticity per resource; capacities via -cap "C1,C2,...". Example
// (the paper's §3 running example):
//
//	refalloc -cap 24,12 -agent user1:0.6,0.4 -agent user2:0.2,0.8
//
// Pass -mech to compare mechanisms: proportional (default), maxwelfare,
// equalslowdown, equalsplit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ref"
)

// agentFlags accumulates repeated -agent values.
type agentFlags []string

func (a *agentFlags) String() string { return strings.Join(*a, "; ") }
func (a *agentFlags) Set(s string) error {
	*a = append(*a, s)
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseAgent(s string, resources int) (ref.Agent, error) {
	name, alphaStr, ok := strings.Cut(s, ":")
	if !ok {
		return ref.Agent{}, fmt.Errorf("agent %q must be name:α1,α2,...", s)
	}
	alpha, err := parseFloats(alphaStr)
	if err != nil {
		return ref.Agent{}, err
	}
	if len(alpha) != resources {
		return ref.Agent{}, fmt.Errorf("agent %q has %d elasticities, system has %d resources", name, len(alpha), resources)
	}
	u, err := ref.NewUtility(1, alpha...)
	if err != nil {
		return ref.Agent{}, err
	}
	return ref.Agent{Name: name, Utility: u}, nil
}

func pickMechanism(name string) (ref.Mechanism, error) {
	switch name {
	case "proportional":
		return ref.ProportionalElasticity(), nil
	case "maxwelfare":
		return ref.MaxWelfareFair(), nil
	case "equalslowdown":
		return ref.EqualSlowdown(), nil
	case "equalsplit":
		return ref.EqualSplit(), nil
	default:
		return nil, fmt.Errorf("unknown mechanism %q (proportional, maxwelfare, equalslowdown, equalsplit)", name)
	}
}

func main() {
	var agents agentFlags
	capStr := flag.String("cap", "", "total capacity per resource, e.g. 24,12")
	mechName := flag.String("mech", "proportional", "allocation mechanism")
	flag.Var(&agents, "agent", "agent as name:α1,α2,... (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "refalloc: %v\n", err)
		os.Exit(1)
	}
	if *capStr == "" || len(agents) == 0 {
		fmt.Fprintln(os.Stderr, "refalloc: need -cap and at least one -agent (see -h)")
		os.Exit(2)
	}
	capacity, err := parseFloats(*capStr)
	if err != nil {
		fail(err)
	}
	as := make([]ref.Agent, 0, len(agents))
	for _, s := range agents {
		a, err := parseAgent(s, len(capacity))
		if err != nil {
			fail(err)
		}
		as = append(as, a)
	}
	m, err := pickMechanism(*mechName)
	if err != nil {
		fail(err)
	}
	x, err := m.Allocate(as, capacity)
	if err != nil {
		fail(err)
	}
	fmt.Printf("mechanism: %s\n", m.Name())
	for i, a := range as {
		fmt.Printf("%-12s", a.Name)
		for r, v := range x[i] {
			fmt.Printf("  resource%d=%8.3f (%5.1f%%)", r, v, 100*v/capacity[r])
		}
		fmt.Println()
	}
	rep, err := ref.Audit(as, capacity, x, ref.Tolerance{Rel: 1e-3, MRS: 0.02})
	if err != nil {
		fail(err)
	}
	fmt.Printf("properties: %s\n", rep)
	us, err := ref.NormalizedUtilities(as, capacity, x)
	if err != nil {
		fail(err)
	}
	wt := 0.0
	for i, u := range us {
		fmt.Printf("U_%s = %.4f\n", as[i].Name, u)
		wt += u
	}
	fmt.Printf("weighted system throughput = %.4f\n", wt)
}
