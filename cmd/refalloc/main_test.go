package main

import (
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("24, 12")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 24 || got[1] != 12 {
		t.Fatalf("parseFloats = %v", got)
	}
	if _, err := parseFloats("1,abc"); err == nil {
		t.Error("bad number accepted")
	}
	if _, err := parseFloats(""); err == nil {
		t.Error("empty string accepted")
	}
}

func TestParseAgent(t *testing.T) {
	a, err := parseAgent("user1:0.6,0.4", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "user1" || a.Utility.Alpha[0] != 0.6 {
		t.Fatalf("parseAgent = %+v", a)
	}
	if _, err := parseAgent("no-colon", 2); err == nil {
		t.Error("missing colon accepted")
	}
	if _, err := parseAgent("u:0.5", 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := parseAgent("u:-1,0.5", 2); err == nil {
		t.Error("negative elasticity accepted")
	}
	if _, err := parseAgent("u:bad,0.5", 2); err == nil {
		t.Error("non-numeric elasticity accepted")
	}
}

func TestPickMechanism(t *testing.T) {
	for _, name := range []string{"proportional", "maxwelfare", "equalslowdown", "equalsplit"} {
		m, err := pickMechanism(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m == nil || m.Name() == "" {
			t.Errorf("%s returned bad mechanism", name)
		}
	}
	if _, err := pickMechanism("nonesuch"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestAgentFlags(t *testing.T) {
	var a agentFlags
	if err := a.Set("x:1,2"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("y:3,4"); err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || a.String() == "" {
		t.Fatalf("agentFlags = %v", a)
	}
}
