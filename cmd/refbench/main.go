// Command refbench regenerates the REF paper's tables and figures.
//
// Usage:
//
//	refbench -list                 enumerate experiments
//	refbench -exp fig13            regenerate Figure 13
//	refbench -exp all              regenerate everything
//	refbench -exp fig9 -accesses 40000   higher-fidelity sweep
//	refbench -exp fig13 -parallelism 4   explicit worker-pool width
//	refbench -exp nresource -resources 3 run over the 3-resource platform
//	refbench -exp fig13 -metrics-addr :9090 -run-manifest run.json
//
// -resources selects the standard N-resource platform spec and -spec takes
// a custom spec as JSON; either reruns profiling experiments over that
// spec's grid. Unset, output is the historical 2-resource result byte for
// byte.
//
// Output is the same rows/series the paper reports, printed to stdout.
// -metrics-addr serves Prometheus text on /metrics plus expvar and pprof
// under /debug/ for the duration of the run; -run-manifest writes a
// structured JSON record (config, per-experiment wall times, final metric
// snapshot) when the run finishes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ref"
	"ref/internal/cliutil"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		expID     = flag.String("exp", "", "experiment ID to run (or \"all\")")
		accesses  = flag.Int("accesses", 0, "memory accesses per simulated configuration (0 = default)")
		resources = flag.Int("resources", 0, "run over the standard N-resource platform spec (0 = legacy 2-resource platform)")
		specJSON  = flag.String("spec", "", "run over a custom platform spec given as JSON (overrides -resources)")

		parallelism int
		metricsAddr string
		manifestOut string
	)
	cliutil.ParallelismVar(flag.CommandLine, &parallelism)
	cliutil.MetricsAddrVar(flag.CommandLine, &metricsAddr)
	cliutil.RunManifestVar(flag.CommandLine, &manifestOut)
	flag.Parse()

	if *list {
		for _, e := range ref.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "refbench: choose an experiment with -exp <id> (see -list)")
		os.Exit(2)
	}
	effParallel := parallelism
	if effParallel <= 0 {
		effParallel = ref.Parallelism()
	}
	var spec ref.PlatformSpec
	if *specJSON != "" || *resources != 0 {
		var err error
		if spec, err = ref.ResolveSpecArg([]byte(*specJSON), *resources); err != nil {
			fmt.Fprintf(os.Stderr, "refbench: %v\n", err)
			os.Exit(1)
		}
	}

	// Observability: installing a registry turns on instrumentation in
	// every layer; simulation results are bit-identical either way.
	var manifest *ref.RunManifest
	if metricsAddr != "" || manifestOut != "" {
		ref.InstallMetrics(ref.NewMetricsRegistry())
	}
	if metricsAddr != "" {
		srv, err := ref.ServeMetrics(metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("refbench: metrics at http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof)\n", srv.Addr())
	}
	if manifestOut != "" {
		manifest = ref.NewRunManifest("refbench", os.Args[1:])
		manifest.Parallelism = effParallel
		manifest.Accesses = *accesses
	}

	fmt.Printf("refbench: parallelism=%d (GOMAXPROCS=%d)\n\n", effParallel, runtime.GOMAXPROCS(0))
	ids := []string{*expID}
	if *expID == "all" {
		ids = ids[:0]
		for _, e := range ref.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		err := ref.RunExperimentSpec(id, spec, *accesses, parallelism, os.Stdout)
		elapsed := time.Since(start)
		if manifest != nil {
			manifest.Record(id, elapsed.Seconds(), err)
		}
		if err != nil {
			if manifest != nil {
				if werr := manifest.WriteFile(manifestOut); werr != nil {
					fmt.Fprintf(os.Stderr, "refbench: %v\n", werr)
				}
			}
			fmt.Fprintf(os.Stderr, "refbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, elapsed.Round(time.Millisecond))
	}
	if manifest != nil {
		if err := manifest.WriteFile(manifestOut); err != nil {
			fmt.Fprintf(os.Stderr, "refbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("run manifest written to %s\n", manifestOut)
	}
}
