// Command refbench regenerates the REF paper's tables and figures.
//
// Usage:
//
//	refbench -list                 enumerate experiments
//	refbench -exp fig13            regenerate Figure 13
//	refbench -exp all              regenerate everything
//	refbench -exp fig9 -accesses 40000   higher-fidelity sweep
//	refbench -exp fig13 -parallelism 4   explicit worker-pool width
//
// Output is the same rows/series the paper reports, printed to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ref"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		expID    = flag.String("exp", "", "experiment ID to run (or \"all\")")
		accesses = flag.Int("accesses", 0, "memory accesses per simulated configuration (0 = default)")
		parallel = flag.Int("parallelism", 0, "worker-pool width for concurrent simulation units (0 = REF_PARALLELISM or GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, e := range ref.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "refbench: choose an experiment with -exp <id> (see -list)")
		os.Exit(2)
	}
	effParallel := *parallel
	if effParallel <= 0 {
		effParallel = ref.Parallelism()
	}
	fmt.Printf("refbench: parallelism=%d (GOMAXPROCS=%d)\n\n", effParallel, runtime.GOMAXPROCS(0))
	ids := []string{*expID}
	if *expID == "all" {
		ids = ids[:0]
		for _, e := range ref.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		if err := ref.RunExperimentParallel(id, *accesses, *parallel, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "refbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
