package ref

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObservabilityFacade drives the public metrics API end to end: run
// an instrumented experiment, scrape it over HTTP, and round-trip a
// manifest — the same path the CLIs use.
func TestObservabilityFacade(t *testing.T) {
	reg := NewMetricsRegistry()
	InstallMetrics(reg)
	defer InstallMetrics(nil)
	if InstalledMetrics() != reg {
		t.Fatal("InstalledMetrics did not return the installed registry")
	}

	// fig1 is pure geometry (no simulation) — cheap, but still counted.
	if err := RunExperiment("fig1", 0, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := SnapshotMetrics()
	if s.Counters[`ref_exp_runs_total{exp="fig1",result="ok"}`] != 1 {
		t.Errorf("experiment counter missing: %v", s.Counters)
	}
	if s.Histograms["ref_exp_duration_seconds"].Count != 1 {
		t.Errorf("experiment duration histogram missing")
	}

	srv, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ref_exp_runs_total") {
		t.Errorf("scrape missing experiment counter:\n%s", body)
	}

	m := NewRunManifest("test", nil)
	m.Record("fig1", 0.1, nil)
	m.RecordReplay(ReplayRecord{Name: "steady", Seed: 1, Epochs: 8, Digest: "abc", Violations: []string{}})
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics == nil || got.Metrics.Counters[`ref_exp_runs_total{exp="fig1",result="ok"}`] != 1 {
		t.Errorf("manifest snapshot missing experiment counter")
	}
	if len(got.Replay) != 1 || got.Replay[0].Name != "steady" || got.Replay[0].Digest != "abc" {
		t.Errorf("manifest replay section did not round-trip: %+v", got.Replay)
	}
	// CI jq-asserts `.replay[].violations | length == 0`, so the empty
	// list must serialize as [], not null.
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), `"violations": []`) && !strings.Contains(string(raw), `"violations":[]`) {
		t.Errorf("empty violations list not serialized as []:\n%s", raw)
	}
}
